//! Dynamic request batching: the queue that turns concurrent single-sample
//! callers into `predict_batch` tiles.
//!
//! The measured economics of this workspace favor batches: one
//! [`BatchPredictor::predict_batch`] call amortizes dispatch and packing
//! across its rows, and the uncertainty path shares one blocked multi-RHS
//! triangular solve across a whole tile instead of streaming the Cholesky
//! factor once per sample. A [`BatchQueue`] exposes that win to callers who
//! each hold exactly one sample: submissions park in a bounded queue, a
//! dedicated worker drains up to [`BatchConfig::max_batch`] of them into one
//! evaluator call when either the tile fills or a small deadline window
//! ([`BatchConfig::deadline`]) expires, and each caller gets back exactly its
//! own output row.
//!
//! Coalescing is invisible in the results by construction: every evaluator
//! row depends only on its own input row (pinned by the serving test suite),
//! so a sample's response bits are identical whether it rode alone or in a
//! full tile — at any thread count and any batching window.
//!
//! The queue is deliberately socket-free. `cbmf-server` puts a TCP protocol
//! in front of it, but anything that can call [`BatchQueue::submit`] from
//! multiple threads (an FFI shim, an in-process simulator loop) gets the
//! same coalescing.
//!
//! # Backpressure
//!
//! The queue depth is bounded ([`BatchConfig::queue_depth`]). When a
//! submission would exceed it, `submit` fails fast with
//! [`BatchError::Overloaded`] instead of queueing unboundedly — the caller
//! (e.g. the TCP front-end) turns that into a typed in-band rejection and
//! the client retries with backoff. Depth, batch cap and deadline resolve
//! once per process from `CBMF_SERVE_*` (the `CBMF_BLOCK_*` pattern) with
//! builder overrides for tests and benches.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cbmf_linalg::Matrix;
use cbmf_trace::{Counter, Gauge};

use crate::{BatchPredictor, ServeError};

static SERVER_BATCHES: Counter = Counter::new("server.batches");
static SERVER_COALESCED: Counter = Counter::new("server.coalesced");
static SERVER_REJECTED: Counter = Counter::new("server.rejected");
static SERVER_QUEUE_DEPTH: Gauge = Gauge::new("server.queue_depth");

/// Default batch cap: matches the `batch_0064` sweet spot in
/// `BENCH_predict.json` and the predictor's default tile height.
pub const DEFAULT_MAX_BATCH: usize = 64;
/// Default coalescing window in microseconds.
pub const DEFAULT_DEADLINE_US: u64 = 100;
/// Default bounded queue depth (pending submissions before `Overloaded`).
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Once-per-process `CBMF_SERVE_*` resolution, like `fuse_default` /
/// `CBMF_BLOCK_*`: the first reader fixes the values for the process.
fn env_defaults() -> (usize, u64, usize) {
    static DEFAULTS: OnceLock<(usize, u64, usize)> = OnceLock::new();
    *DEFAULTS.get_or_init(|| {
        let parse_usize = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        };
        let deadline = std::env::var("CBMF_SERVE_DEADLINE_US")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_DEADLINE_US);
        (
            parse_usize("CBMF_SERVE_BATCH", DEFAULT_MAX_BATCH),
            deadline,
            parse_usize("CBMF_SERVE_DEPTH", DEFAULT_QUEUE_DEPTH),
        )
    })
}

/// Tuning knobs for one [`BatchQueue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest tile the worker assembles; 1 disables coalescing.
    pub max_batch: usize,
    /// How long the worker holds an underfull tile open for stragglers.
    /// Zero dispatches whatever is queued immediately.
    pub deadline: Duration,
    /// Pending submissions allowed before [`BatchError::Overloaded`].
    pub queue_depth: usize,
}

impl BatchConfig {
    /// Resolves the process-wide defaults: `CBMF_SERVE_BATCH` (default 64),
    /// `CBMF_SERVE_DEADLINE_US` (default 100), `CBMF_SERVE_DEPTH` (default
    /// 1024), each read once per process on first use.
    pub fn from_env() -> Self {
        let (max_batch, deadline_us, queue_depth) = env_defaults();
        BatchConfig {
            max_batch,
            deadline: Duration::from_micros(deadline_us),
            queue_depth,
        }
    }

    /// Overrides the batch cap (clamped to at least 1).
    #[must_use]
    pub fn with_max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Overrides the coalescing deadline.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = d;
        self
    }

    /// Overrides the bounded queue depth (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::from_env()
    }
}

/// Why a [`BatchQueue::submit`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The bounded queue was full; retry with backoff.
    Overloaded,
    /// The queue is shutting down (its owner dropped it).
    Shutdown,
    /// The sample's length does not match the evaluator's input width.
    WrongDimension {
        /// Length the caller submitted.
        got: usize,
        /// Length the evaluator expects.
        want: usize,
    },
    /// The underlying evaluator failed for the whole tile.
    Eval(String),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Overloaded => write!(f, "queue full — retry with backoff"),
            BatchError::Shutdown => write!(f, "batch queue is shut down"),
            BatchError::WrongDimension { got, want } => {
                write!(f, "sample has {got} values, evaluator expects {want}")
            }
            BatchError::Eval(msg) => write!(f, "batch evaluation failed: {msg}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Point-in-time statistics of one queue (exact, independent of tracing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchQueueStats {
    /// Samples accepted into the queue.
    pub submitted: u64,
    /// Evaluator calls dispatched.
    pub batches: u64,
    /// Samples that shared a tile with at least one other sample
    /// (`batch_len - 1` summed over all dispatched tiles).
    pub coalesced: u64,
    /// Submissions rejected by the depth bound.
    pub rejected: u64,
    /// `fill[i]` counts dispatched tiles of `i + 1` samples.
    pub fill: Vec<u64>,
}

struct Pending {
    sample: Vec<f64>,
    reply: mpsc::SyncSender<Result<Vec<f64>, BatchError>>,
}

struct Shared {
    queue: Mutex<VecDeque<Pending>>,
    avail: Condvar,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    fill: Vec<AtomicU64>,
}

type EvalFn = dyn Fn(&Matrix) -> Result<Matrix, ServeError> + Send + Sync;

/// A bounded, deadline-coalescing batch queue over a row-wise evaluator.
///
/// See the [module docs](self) for semantics. Constructed over a shared
/// [`BatchPredictor`] ([`BatchQueue::for_mean`] /
/// [`BatchQueue::for_uncertainty`]) or any row-independent closure
/// ([`BatchQueue::with_eval`]).
pub struct BatchQueue {
    shared: Arc<Shared>,
    config: BatchConfig,
    in_dim: usize,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for BatchQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchQueue")
            .field("config", &self.config)
            .field("in_dim", &self.in_dim)
            .finish_non_exhaustive()
    }
}

impl BatchQueue {
    /// Coalesces submissions into [`BatchPredictor::predict_batch`] calls;
    /// each reply row holds the K per-state means.
    pub fn for_mean(predictor: Arc<BatchPredictor>, config: BatchConfig) -> Self {
        let in_dim = predictor.model().num_variables();
        Self::with_eval(config, in_dim, move |xs| predictor.predict_batch(xs))
    }

    /// Coalesces submissions into
    /// [`BatchPredictor::predict_batch_with_uncertainty`] calls; each reply
    /// row holds `[means[0..K], vars[0..K]]`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] when the predictor carries no posterior
    /// factors.
    pub fn for_uncertainty(
        predictor: Arc<BatchPredictor>,
        config: BatchConfig,
    ) -> Result<Self, ServeError> {
        if !predictor.has_uncertainty() {
            return Err(ServeError::Invalid(
                "predictor carries no posterior factors — cannot serve uncertainty".to_string(),
            ));
        }
        let in_dim = predictor.model().num_variables();
        Ok(Self::with_eval(config, in_dim, move |xs| {
            let (means, vars) = predictor.predict_batch_with_uncertainty(xs)?;
            let (n, k) = means.shape();
            let mut out = Matrix::zeros(n, 2 * k);
            for i in 0..n {
                out.as_mut_slice()[i * 2 * k..i * 2 * k + k].copy_from_slice(means.row(i));
                out.as_mut_slice()[i * 2 * k + k..(i + 1) * 2 * k].copy_from_slice(vars.row(i));
            }
            Ok(out)
        }))
    }

    /// Builds a queue over an arbitrary row-wise evaluator: `eval` receives
    /// an `n × in_dim` tile and must return one output row per input row,
    /// with row `i` depending only on input row `i` (otherwise coalescing
    /// would be observable).
    pub fn with_eval(
        config: BatchConfig,
        in_dim: usize,
        eval: impl Fn(&Matrix) -> Result<Matrix, ServeError> + Send + Sync + 'static,
    ) -> Self {
        let config = BatchConfig {
            max_batch: config.max_batch.max(1),
            deadline: config.deadline,
            queue_depth: config.queue_depth.max(1),
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            avail: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            fill: (0..config.max_batch).map(|_| AtomicU64::new(0)).collect(),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let cfg = config.clone();
            let eval: Box<EvalFn> = Box::new(eval);
            std::thread::Builder::new()
                .name("cbmf-batch-queue".to_string())
                .spawn(move || worker_loop(&shared, &cfg, in_dim, &eval))
                .expect("spawn batch-queue worker")
        };
        BatchQueue {
            shared,
            config,
            in_dim,
            worker: Some(worker),
        }
    }

    /// The queue's resolved configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// The evaluator's expected sample length.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Submits one sample and blocks until its output row (or a typed
    /// failure) comes back. Safe to call from many threads; concurrent
    /// callers are what the worker coalesces.
    ///
    /// # Errors
    ///
    /// [`BatchError::WrongDimension`] without enqueueing on a length
    /// mismatch; [`BatchError::Overloaded`] when the depth bound is hit;
    /// [`BatchError::Shutdown`] when the queue is (or goes) down;
    /// [`BatchError::Eval`] when the evaluator failed the whole tile.
    pub fn submit(&self, sample: &[f64]) -> Result<Vec<f64>, BatchError> {
        if sample.len() != self.in_dim {
            return Err(BatchError::WrongDimension {
                got: sample.len(),
                want: self.in_dim,
            });
        }
        let (reply, rx) = mpsc::sync_channel(1);
        {
            let mut q = self.shared.queue.lock().unwrap();
            if self.shared.shutdown.load(Ordering::Relaxed) {
                return Err(BatchError::Shutdown);
            }
            if q.len() >= self.config.queue_depth {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                SERVER_REJECTED.inc();
                return Err(BatchError::Overloaded);
            }
            q.push_back(Pending {
                sample: sample.to_vec(),
                reply,
            });
            SERVER_QUEUE_DEPTH.maximize(q.len() as f64);
            self.shared.avail.notify_one();
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        rx.recv().unwrap_or(Err(BatchError::Shutdown))
    }

    /// Exact queue statistics so far.
    pub fn stats(&self) -> BatchQueueStats {
        BatchQueueStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            fill: self
                .shared
                .fill
                .iter()
                .map(|f| f.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for BatchQueue {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.avail.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        // Anything still queued (submitted after the final drain) gets a
        // clean Shutdown instead of a hung caller.
        let mut q = self.shared.queue.lock().unwrap();
        for p in q.drain(..) {
            let _ = p.reply.send(Err(BatchError::Shutdown));
        }
    }
}

fn worker_loop(shared: &Shared, cfg: &BatchConfig, in_dim: usize, eval: &EvalFn) {
    let mut q = shared.queue.lock().unwrap();
    loop {
        // Park until work arrives or shutdown. On shutdown, drain what is
        // already queued so no accepted submission is dropped.
        while q.is_empty() {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            q = shared.avail.wait(q).unwrap();
        }
        // Coalescing window: hold the tile open for stragglers until it
        // fills or the deadline passes. Skipped entirely when the queue
        // already holds a full tile or coalescing is disabled.
        if cfg.max_batch > 1 && !cfg.deadline.is_zero() {
            let deadline = Instant::now() + cfg.deadline;
            while q.len() < cfg.max_batch && !shared.shutdown.load(Ordering::Relaxed) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shared.avail.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let n = q.len().min(cfg.max_batch);
        let tile: Vec<Pending> = q.drain(..n).collect();
        SERVER_QUEUE_DEPTH.set(q.len() as f64);
        drop(q);

        let mut xs = Matrix::zeros(n, in_dim);
        for (i, p) in tile.iter().enumerate() {
            xs.as_mut_slice()[i * in_dim..(i + 1) * in_dim].copy_from_slice(&p.sample);
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .coalesced
            .fetch_add((n - 1) as u64, Ordering::Relaxed);
        shared.fill[n - 1].fetch_add(1, Ordering::Relaxed);
        SERVER_BATCHES.inc();
        SERVER_COALESCED.add((n - 1) as u64);

        match eval(&xs) {
            Ok(out) => {
                debug_assert_eq!(out.rows(), n);
                for (i, p) in tile.into_iter().enumerate() {
                    let _ = p.reply.send(Ok(out.row(i).to_vec()));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for p in tile {
                    let _ = p.reply.send(Err(BatchError::Eval(msg.clone())));
                }
            }
        }
        q = shared.queue.lock().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An evaluator whose row output encodes (input value, observed batch
    /// size) so tests can distinguish coalesced from solo dispatches while
    /// remaining row-independent in its first column.
    fn echo_queue(cfg: BatchConfig) -> BatchQueue {
        BatchQueue::with_eval(cfg, 2, |xs| {
            let (n, _) = xs.shape();
            Ok(Matrix::from_fn(n, 2, |i, j| {
                if j == 0 {
                    xs[(i, 0)] + 1.0
                } else {
                    n as f64
                }
            }))
        })
    }

    #[test]
    fn routes_each_reply_to_its_submitter() {
        let cfg = BatchConfig::from_env()
            .with_max_batch(8)
            .with_deadline(Duration::from_millis(5));
        let q = Arc::new(echo_queue(cfg));
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let out = q.submit(&[i as f64, 0.0]).unwrap();
                    assert_eq!(out[0], i as f64 + 1.0, "reply row belongs to sample {i}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = q.stats();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.fill.iter().sum::<u64>(), stats.batches);
        assert_eq!(
            stats
                .fill
                .iter()
                .enumerate()
                .map(|(i, &n)| (i as u64 + 1) * n)
                .sum::<u64>(),
            32,
            "fill histogram accounts for every sample"
        );
    }

    #[test]
    fn deadline_window_coalesces_concurrent_submissions() {
        // A long window and a worker-side rendezvous: park enough
        // submitters, then let the deadline fire once — at least one tile
        // must contain more than one sample.
        let cfg = BatchConfig::from_env()
            .with_max_batch(4)
            .with_deadline(Duration::from_millis(50));
        let q = Arc::new(echo_queue(cfg));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.submit(&[i as f64, 0.0]).unwrap()[1])
            })
            .collect();
        let sizes: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            sizes.iter().any(|&s| s > 1.0),
            "no coalescing observed: batch sizes {sizes:?}"
        );
        assert!(q.stats().coalesced > 0);
    }

    #[test]
    fn max_batch_one_never_coalesces() {
        let cfg = BatchConfig::from_env()
            .with_max_batch(1)
            .with_deadline(Duration::from_millis(20));
        let q = Arc::new(echo_queue(cfg));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.submit(&[i as f64, 0.0]).unwrap()[1])
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1.0, "tile must hold exactly one sample");
        }
        let stats = q.stats();
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.batches, 16);
    }

    #[test]
    fn depth_bound_rejects_with_overloaded() {
        // An evaluator that blocks until released, so the queue backs up
        // deterministically.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate_w = Arc::clone(&gate);
        let cfg = BatchConfig::from_env()
            .with_max_batch(1)
            .with_deadline(Duration::ZERO)
            .with_queue_depth(2);
        let q = Arc::new(BatchQueue::with_eval(cfg, 1, move |xs| {
            let (lock, cv) = &*gate_w;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            let (n, _) = xs.shape();
            Ok(Matrix::from_fn(n, 1, |i, _| xs[(i, 0)]))
        }));
        // First submission is picked up by the worker (and blocks in eval);
        // the next two fill the depth-2 queue; the one after must bounce.
        let mut handles = Vec::new();
        for i in 0..3 {
            let qs = Arc::clone(&q);
            handles.push(std::thread::spawn(move || qs.submit(&[i as f64])));
            // Wait until this submission is actually parked (in the queue or
            // claimed by the worker) before issuing the next.
            while q.stats().submitted < i + 1 {
                std::thread::yield_now();
            }
        }
        // Give the worker time to claim the first sample so the queue holds
        // exactly two pending entries.
        std::thread::sleep(Duration::from_millis(20));
        let err = q.submit(&[9.0]).unwrap_err();
        assert_eq!(err, BatchError::Overloaded);
        assert_eq!(q.stats().rejected, 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        for h in handles {
            assert!(h.join().unwrap().is_ok());
        }
    }

    #[test]
    fn wrong_dimension_is_rejected_before_enqueue() {
        let q = echo_queue(BatchConfig::from_env());
        assert_eq!(
            q.submit(&[1.0, 2.0, 3.0]).unwrap_err(),
            BatchError::WrongDimension { got: 3, want: 2 }
        );
        assert_eq!(q.stats().submitted, 0);
    }

    #[test]
    fn eval_failure_reaches_every_member_of_the_tile() {
        let cfg = BatchConfig::from_env()
            .with_max_batch(4)
            .with_deadline(Duration::from_millis(30));
        let q = Arc::new(BatchQueue::with_eval(cfg, 1, |_| {
            Err(ServeError::Invalid("injected".to_string()))
        }));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.submit(&[i as f64]))
            })
            .collect();
        for h in handles {
            match h.join().unwrap() {
                Err(BatchError::Eval(msg)) => assert!(msg.contains("injected")),
                other => panic!("expected Eval error, got {other:?}"),
            }
        }
    }

    #[test]
    fn drop_is_clean_and_submit_after_drop_is_impossible_by_construction() {
        let q = echo_queue(BatchConfig::from_env().with_max_batch(2));
        assert_eq!(q.submit(&[5.0, 0.0]).unwrap()[0], 6.0);
        drop(q); // must join the worker without hanging
    }

    #[test]
    fn env_config_defaults_are_sane() {
        let cfg = BatchConfig::from_env();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.queue_depth >= 1);
    }
}
