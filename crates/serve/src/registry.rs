//! A multi-model registry with atomic hot swap and an LRU-bounded
//! resident set.
//!
//! One serving process holds many fitted circuits × knob states × corners.
//! [`ModelRegistry`] keys validated [`BatchPredictor`]s by name (and by a
//! dense numeric id for the wire protocol), with the fleet-serving
//! properties the ROADMAP asks for:
//!
//! * **Lock-free reads.** The name table and every model slot live behind
//!   [`cbmf_parallel::SwapSlot`]: [`get`](ModelRegistry::get) is a few
//!   atomic operations and never blocks on a writer.
//! * **Atomic hot swap.** [`insert`](ModelRegistry::insert) and
//!   [`reload`](ModelRegistry::reload) build and *validate* the replacement
//!   off to the side, then publish it in one pointer swap. In-flight
//!   requests keep the `Arc` they already loaded — they always see a
//!   complete model, old or new, never a torn one. A replacement that fails
//!   validation leaves the resident model untouched.
//! * **LRU-bounded residency.** At most `capacity` models are resident at
//!   once; publishing past the bound evicts the least-recently-used
//!   *reloadable* model (one registered from a path). Eviction only empties
//!   the slot — readers holding the `Arc` finish their requests on the
//!   evicted model, and the next [`get`](ModelRegistry::get) revives it
//!   from disk transparently.
//!
//! Observability via `cbmf-trace`: process-wide `registry.*` counters, a
//! `registry.resident` gauge, and a per-model
//! `registry.model.<name>.hits` counter (interned, so the name set must be
//! bounded — it is, by the model table).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cbmf_parallel::SwapSlot;
use cbmf_trace::{Counter, Gauge};

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use crate::predictor::BatchPredictor;

/// Artifact files loaded from disk (initial loads, reloads, and revivals).
static LOADS: Counter = Counter::new("registry.loads");
/// Hot swaps that replaced an already-resident model.
static SWAPS: Counter = Counter::new("registry.swaps");
/// Models evicted by the LRU residency bound.
static EVICTIONS: Counter = Counter::new("registry.evictions");
/// Lookups answered from a resident model.
static HITS: Counter = Counter::new("registry.hits");
/// Lookups that found the slot empty (evicted or unknown).
static MISSES: Counter = Counter::new("registry.misses");
/// Replacement artifacts rejected by validation; the resident model stayed.
static VALIDATION_FAILURES: Counter = Counter::new("registry.validation_failures");
/// Currently resident models.
static RESIDENT: Gauge = Gauge::new("registry.resident");

/// One named model: a hot-swappable predictor slot plus the bookkeeping
/// needed to revive and rank it.
struct Entry {
    name: String,
    id: u32,
    /// Source path, when the model was registered from disk; pathless
    /// (inserted) models cannot be revived and are therefore never evicted.
    path: Mutex<Option<PathBuf>>,
    cell: SwapSlot<BatchPredictor>,
    /// Logical timestamp of the last lookup, for LRU ranking.
    last_used: AtomicU64,
    hits: &'static Counter,
}

/// The immutable published view of the table; replaced wholesale on
/// insert so lookups never take a lock.
struct Directory {
    by_name: BTreeMap<String, Arc<Entry>>,
    /// Dense id space: `by_id[id]` is the entry with that id.
    by_id: Vec<Arc<Entry>>,
}

/// A string-keyed table of hot-swappable models. See the module docs for
/// the concurrency contract.
pub struct ModelRegistry {
    dir: SwapSlot<Directory>,
    /// Serializes structural mutation (insert/evict/revive); reads never
    /// touch it.
    write: Mutex<()>,
    clock: AtomicU64,
    capacity: usize,
}

impl ModelRegistry {
    /// An unbounded registry: every registered model stays resident.
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// A registry keeping at most `capacity` models resident (LRU beyond
    /// that). `capacity` is clamped to at least 1.
    pub fn with_capacity(capacity: usize) -> Self {
        let reg = ModelRegistry {
            dir: SwapSlot::new(),
            write: Mutex::new(()),
            clock: AtomicU64::new(0),
            capacity: capacity.max(1),
        };
        reg.dir.store(Arc::new(Directory {
            by_name: BTreeMap::new(),
            by_id: Vec::new(),
        }));
        reg
    }

    /// Validates `artifact` and publishes it under `name`, returning the
    /// model's id. A name already in the table keeps its id and is hot
    /// swapped: the new predictor is built first, then one pointer swap
    /// replaces the old one. On validation failure the table is untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError`] from predictor construction (inconsistent factors…).
    pub fn insert(&self, name: &str, artifact: &ModelArtifact) -> Result<u32, ServeError> {
        self.publish(name, artifact, None)
    }

    /// Loads, validates, and publishes the artifact at `path` (either
    /// format, sniffed) under `name`, remembering the path so the model can
    /// be revived after eviction and re-read by
    /// [`reload`](Self::reload).
    ///
    /// # Errors
    ///
    /// [`ServeError`] from the load or from validation.
    pub fn register_file<P: AsRef<Path>>(&self, name: &str, path: P) -> Result<u32, ServeError> {
        let path = path.as_ref();
        LOADS.inc();
        let artifact = ModelArtifact::load_auto(path)?;
        self.publish(name, &artifact, Some(path.to_path_buf()))
    }

    /// Registers every `*.cbmf.json` / `*.cbmf.bin` file in `dir` under its
    /// file stem (`lna.cbmf.bin` → `lna`), in sorted name order. Returns
    /// the `(name, id)` pairs registered.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on an unreadable directory, or the first load /
    /// validation failure (models registered before it stay registered).
    pub fn load_dir<P: AsRef<Path>>(&self, dir: P) -> Result<Vec<(String, u32)>, ServeError> {
        let mut files: Vec<(String, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(fname) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let stem = fname
                .strip_suffix(".cbmf.json")
                .or_else(|| fname.strip_suffix(".cbmf.bin"));
            if let Some(stem) = stem {
                files.push((stem.to_string(), path));
            }
        }
        files.sort();
        let mut out = Vec::with_capacity(files.len());
        for (name, path) in files {
            let id = self.register_file(&name, &path)?;
            out.push((name, id));
        }
        Ok(out)
    }

    /// Re-reads `name`'s artifact from its registered path, validates it off
    /// to the side, and publishes it in one swap. In-flight requests finish
    /// on whichever model they already hold.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for an unknown name or a pathless model;
    /// load/validation errors leave the resident model serving.
    pub fn reload(&self, name: &str) -> Result<(), ServeError> {
        let entry = self
            .lookup(name)
            .ok_or_else(|| ServeError::Invalid(format!("no model named '{name}'")))?;
        let path = entry
            .path
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .ok_or_else(|| ServeError::Invalid(format!("model '{name}' has no registered path")))?;
        LOADS.inc();
        let artifact = ModelArtifact::load_auto(&path)?;
        self.publish(name, &artifact, Some(path))?;
        Ok(())
    }

    /// The current predictor for `name`: the resident one, or — for an
    /// evicted model with a registered path — a transparent revival from
    /// disk. `None` for unknown names and for revivals that fail.
    pub fn get(&self, name: &str) -> Option<Arc<BatchPredictor>> {
        let entry = self.lookup(name)?;
        self.fetch(&entry)
    }

    /// Like [`get`](Self::get), keyed by the wire protocol's model id.
    pub fn get_by_id(&self, id: u32) -> Option<Arc<BatchPredictor>> {
        let dir = self.dir.load()?;
        let entry = dir.by_id.get(id as usize)?.clone();
        drop(dir);
        self.fetch(&entry)
    }

    /// The id registered for `name`, if any.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        Some(self.lookup(name)?.id)
    }

    /// The name registered under `id`, if any.
    pub fn name_of(&self, id: u32) -> Option<String> {
        let dir = self.dir.load()?;
        Some(dir.by_id.get(id as usize)?.name.clone())
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        match self.dir.load() {
            Some(dir) => dir.by_name.keys().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// How many models are currently resident (≤ the capacity bound).
    pub fn resident(&self) -> usize {
        match self.dir.load() {
            Some(dir) => dir.by_id.iter().filter(|e| e.cell.load().is_some()).count(),
            None => 0,
        }
    }

    // -- internals ---------------------------------------------------------

    fn lookup(&self, name: &str) -> Option<Arc<Entry>> {
        self.dir.load()?.by_name.get(name).cloned()
    }

    /// The read hot path: stamp recency, take the resident `Arc`, or fall
    /// to the revival slow path.
    fn fetch(&self, entry: &Arc<Entry>) -> Option<Arc<BatchPredictor>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        entry.last_used.store(tick, Ordering::Relaxed);
        if let Some(m) = entry.cell.load() {
            HITS.inc();
            entry.hits.inc();
            return Some(m);
        }
        MISSES.inc();
        self.revive(entry)
    }

    /// Revives an evicted model from its path. Serialized on the write lock
    /// so a read storm on a cold model loads the file once, not N times.
    fn revive(&self, entry: &Arc<Entry>) -> Option<Arc<BatchPredictor>> {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(m) = entry.cell.load() {
            return Some(m); // raced a concurrent revival
        }
        let path = entry
            .path
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()?;
        LOADS.inc();
        let artifact = ModelArtifact::load_auto(&path).ok()?;
        let predictor = match BatchPredictor::from_artifact(&artifact) {
            Ok(p) => Arc::new(p),
            Err(_) => {
                VALIDATION_FAILURES.inc();
                return None;
            }
        };
        drop(entry.cell.swap(Some(Arc::clone(&predictor))));
        self.enforce_capacity_locked(Some(entry.id));
        Some(predictor)
    }

    fn publish(
        &self,
        name: &str,
        artifact: &ModelArtifact,
        path: Option<PathBuf>,
    ) -> Result<u32, ServeError> {
        // Validate before touching any shared state: a bad replacement must
        // leave the resident model serving.
        let predictor = Arc::new(BatchPredictor::from_artifact(artifact).inspect_err(|_| {
            VALIDATION_FAILURES.inc();
        })?);

        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let dir = self.dir.load().expect("directory always published");
        let entry = match dir.by_name.get(name) {
            Some(existing) => {
                // Known name: keep the id, swap the model in place.
                if let Some(p) = path {
                    *existing.path.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
                }
                let old = existing.cell.swap(Some(predictor));
                if old.is_some() {
                    SWAPS.inc();
                }
                existing.clone()
            }
            None => {
                let id = dir.by_id.len() as u32;
                let entry = Arc::new(Entry {
                    name: name.to_string(),
                    id,
                    path: Mutex::new(path),
                    cell: SwapSlot::with(predictor),
                    last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
                    hits: cbmf_trace::counter(&format!("registry.model.{name}.hits")),
                });
                let mut by_name = dir.by_name.clone();
                let mut by_id = dir.by_id.clone();
                by_name.insert(name.to_string(), entry.clone());
                by_id.push(entry.clone());
                self.dir.store(Arc::new(Directory { by_name, by_id }));
                entry
            }
        };
        self.enforce_capacity_locked(Some(entry.id));
        Ok(entry.id)
    }

    /// Evicts least-recently-used revivable models until the resident count
    /// is within capacity. `keep` (the id just published or revived) is
    /// never evicted. Caller holds the write lock.
    fn enforce_capacity_locked(&self, keep: Option<u32>) {
        let dir = self.dir.load().expect("directory always published");
        loop {
            let resident: Vec<&Arc<Entry>> = dir
                .by_id
                .iter()
                .filter(|e| e.cell.load().is_some())
                .collect();
            if resident.len() <= self.capacity {
                break;
            }
            // Oldest revivable model that isn't the one we must keep.
            let victim = resident
                .iter()
                .filter(|e| Some(e.id) != keep)
                .filter(|e| e.path.lock().unwrap_or_else(|x| x.into_inner()).is_some())
                .min_by_key(|e| e.last_used.load(Ordering::Relaxed));
            let Some(victim) = victim else {
                break; // everything over budget is pinned; nothing to do
            };
            // Readers already holding the Arc keep serving the evicted
            // model; only the slot empties.
            drop(victim.cell.take());
            EVICTIONS.inc();
        }
        RESIDENT.set(dir.by_id.iter().filter(|e| e.cell.load().is_some()).count() as f64);
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("names", &self.names())
            .field("resident", &self.resident())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbmf::{BasisSpec, PerStateModel};
    use cbmf_linalg::Matrix;

    fn artifact(scale: f64) -> ModelArtifact {
        let coeffs = Matrix::from_fn(2, 3, |k, j| scale * (k as f64 + 1.0) * (j as f64 + 1.0));
        let model = PerStateModel::new(BasisSpec::Linear, 3, vec![0, 1, 2], coeffs, vec![0.0, 1.0])
            .unwrap();
        ModelArtifact::from_model(model)
    }

    #[test]
    fn insert_get_and_hot_swap_change_predictions() {
        let reg = ModelRegistry::new();
        let id = reg.insert("lna", &artifact(1.0)).unwrap();
        assert_eq!(reg.id_of("lna"), Some(id));
        assert_eq!(reg.name_of(id).as_deref(), Some("lna"));
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap();
        let before = reg.get("lna").unwrap().predict_batch(&x).unwrap();
        // Same name, same id, different model after the swap.
        assert_eq!(reg.insert("lna", &artifact(2.0)).unwrap(), id);
        let after = reg.get_by_id(id).unwrap().predict_batch(&x).unwrap();
        assert_ne!(before.as_slice()[0], after.as_slice()[0]);
        assert_eq!(reg.resident(), 1);
    }

    #[test]
    fn unknown_names_and_ids_are_none() {
        let reg = ModelRegistry::new();
        assert!(reg.get("nope").is_none());
        assert!(reg.get_by_id(7).is_none());
        assert!(reg.id_of("nope").is_none());
        assert!(reg.names().is_empty());
    }

    #[test]
    fn lru_evicts_and_revives_from_disk() {
        let dir = std::env::temp_dir().join(format!("cbmf_registry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, scale) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            artifact(scale)
                .save_binary(dir.join(format!("{name}.cbmf.bin")))
                .unwrap();
        }
        let reg = ModelRegistry::with_capacity(2);
        let listed = reg.load_dir(&dir).unwrap();
        assert_eq!(
            listed.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        // Capacity 2: one of the three was evicted, none forgotten.
        assert_eq!(reg.resident(), 2);
        assert_eq!(reg.names().len(), 3);
        // Every model still answers — evicted ones revive transparently.
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        for (name, scale) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            let y = reg.get(name).unwrap().predict_batch(&x).unwrap();
            let want = reg
                .get(name)
                .unwrap()
                .predict_batch(&x)
                .unwrap()
                .as_slice()
                .to_vec();
            assert_eq!(y.as_slice(), &want[..], "model {name} scale {scale}");
            assert!(reg.resident() <= 2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pathless_models_are_never_evicted() {
        let reg = ModelRegistry::with_capacity(1);
        reg.insert("pinned_a", &artifact(1.0)).unwrap();
        reg.insert("pinned_b", &artifact(2.0)).unwrap();
        // Both are pathless: the bound cannot be enforced without losing a
        // model, so both stay.
        assert_eq!(reg.resident(), 2);
        assert!(reg.get("pinned_a").is_some());
        assert!(reg.get("pinned_b").is_some());
    }

    #[test]
    fn reload_requires_a_path_and_republishes() {
        let dirp = std::env::temp_dir().join(format!("cbmf_reload_test_{}", std::process::id()));
        std::fs::create_dir_all(&dirp).unwrap();
        let file = dirp.join("m.cbmf.bin");
        artifact(1.0).save_binary(&file).unwrap();
        let reg = ModelRegistry::new();
        reg.insert("pathless", &artifact(1.0)).unwrap();
        assert!(reg.reload("pathless").is_err());
        assert!(reg.reload("missing").is_err());
        let id = reg.register_file("m", &file).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap();
        let before = reg.get_by_id(id).unwrap().predict_batch(&x).unwrap();
        artifact(5.0).save_binary(&file).unwrap();
        reg.reload("m").unwrap();
        let after = reg.get_by_id(id).unwrap().predict_batch(&x).unwrap();
        assert_ne!(before.as_slice()[0], after.as_slice()[0]);
        std::fs::remove_dir_all(&dirp).ok();
    }
}
