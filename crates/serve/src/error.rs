use std::fmt;

use cbmf::CbmfError;

/// Everything that can go wrong saving, loading, or serving a model.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure reading or writing an artifact.
    Io(std::io::Error),
    /// The artifact text is not valid JSON.
    Parse(String),
    /// The document is valid JSON but not a valid `cbmf-model/1` artifact
    /// (wrong schema version, unknown basis family, shape disagreement…).
    Invalid(String),
    /// A binary `cbmf-model/2` buffer failed framing validation: bad magic
    /// or version, truncation, a lying section length, or a checksum
    /// mismatch. The bytes on disk are damaged or foreign — re-fetch or
    /// re-export, don't retry the parse.
    Corrupt(String),
    /// A modeling-layer error surfaced while rebuilding or evaluating the
    /// model.
    Cbmf(CbmfError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "artifact I/O: {e}"),
            ServeError::Parse(msg) => write!(f, "artifact parse: {msg}"),
            ServeError::Invalid(msg) => write!(f, "invalid artifact: {msg}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt binary artifact: {msg}"),
            ServeError::Cbmf(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Cbmf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CbmfError> for ServeError {
    fn from(e: CbmfError) -> Self {
        ServeError::Cbmf(e)
    }
}

impl From<cbmf_trace::json::JsonError> for ServeError {
    fn from(e: cbmf_trace::json::JsonError) -> Self {
        ServeError::Parse(e.to_string())
    }
}
