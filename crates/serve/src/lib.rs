//! Persistence and serving for fitted C-BMF models.
//!
//! The paper's end product — a per-state sparse model `y_k ≈ Σ_m α_{k,m}
//! b_m(x)` — is meant to be *evaluated* cheaply millions of times (yield
//! estimation, corner extraction), long after the fitting process exited.
//! This crate supplies the two missing pieces:
//!
//! * [`ModelArtifact`] — a versioned, byte-stable on-disk format
//!   (`cbmf-model/1`, canonical sorted-key JSON via `cbmf-trace`) capturing
//!   the basis definition, per-state supports, MAP coefficients, the
//!   σ0/λ/R hyper-parameters, and optionally the posterior factors needed
//!   to reproduce predictive variance bitwise. `save(load(save(x)))` is
//!   byte-identical. A binary sibling, `cbmf-model/2` ([`BINARY_SCHEMA`]),
//!   carries the same content as checksummed little-endian sections with
//!   near-zero parse cost and lossless two-way conversion — JSON stays the
//!   golden/interchange format, binary is what a fleet loads.
//! * [`ModelRegistry`] — a string-keyed table of validated predictors with
//!   a lock-free read path, atomic hot swap, and an LRU-bounded resident
//!   set, so one process serves many circuits × corners.
//! * [`BatchPredictor`] — a blocked batch evaluator: N samples × K states
//!   in cache-friendly row tiles fanned out over `cbmf-parallel`, with an
//!   optional uncertainty path returning predictive mean + variance. Both
//!   paths are bitwise equal to the per-sample [`cbmf::PerStateModel::predict`]
//!   / [`cbmf::PosteriorPredictive::predict`] calls at any thread count.
//! * [`BatchQueue`] — a socket-free dynamic batching queue that coalesces
//!   concurrent single-sample submissions into one predictor tile within a
//!   deadline window, with bounded-depth backpressure. `cbmf-server` puts a
//!   TCP protocol in front of it.
//!
//! ```no_run
//! use cbmf_serve::{BatchPredictor, ModelArtifact};
//! # fn main() -> Result<(), cbmf_serve::ServeError> {
//! # let outcome: cbmf::FitOutcome = unimplemented!();
//! let artifact = ModelArtifact::from_fit(&outcome);
//! artifact.save("model.cbmf.json")?;
//!
//! let served = ModelArtifact::load("model.cbmf.json")?;
//! let predictor = BatchPredictor::from_artifact(&served)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod artifact;
pub mod batching;
mod binary;
mod error;
mod predictor;
mod registry;

pub use artifact::{Hyper, ModelArtifact, MODEL_SCHEMA};
pub use batching::{BatchConfig, BatchError, BatchQueue, BatchQueueStats};
pub use binary::{fnv1a, BINARY_MAGIC, BINARY_SCHEMA};
pub use error::ServeError;
pub use predictor::BatchPredictor;
pub use registry::ModelRegistry;
