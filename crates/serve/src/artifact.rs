//! The `cbmf-model/1` on-disk artifact format.
//!
//! Canonical sorted-key JSON via [`cbmf_trace::Json`]: objects are
//! `BTreeMap`s, numbers print with Rust's shortest-round-trip `f64`
//! formatting, and the writer is deterministic — so `save(load(save(x)))`
//! is byte-identical and golden files can pin exact bytes.
//!
//! Layout (`null` sections are simply absent capabilities):
//!
//! ```text
//! {
//!   "schema": "cbmf-model/1",
//!   "basis": { "family": "linear" | "linear_squares", "num_variables": d },
//!   "model": { "support": [..], "coefficients": [[..] per state],
//!              "intercepts": [..] },
//!   "hyper": null | { "lambda": [..], "r": [[..]], "sigma0": x },
//!   "predictive": null | {
//!     "chol_l": [[..]],          // packed lower triangle, row i has i+1 entries
//!     "chol_jitter": x, "ciy": [..],
//!     "bases": [[[..]]], "basis_means": [[..]], "y_means": [..],
//!     "lambda": [..], "r": [[..]], "sigma0": x
//!   }
//! }
//! ```
//!
//! Forward-compatibility policy: readers reject a different `schema` string
//! outright (a new major format gets a new suffix) but ignore unknown
//! object keys, so `cbmf-model/1` documents may gain additive fields
//! without breaking old readers.

use std::path::Path;

use cbmf::{BasisSpec, FitOutcome, PerStateModel, PosteriorPredictive, PredictiveParts};
use cbmf_linalg::Matrix;
use cbmf_trace::Json;

use crate::error::ServeError;

/// Schema identifier of the artifact format.
pub const MODEL_SCHEMA: &str = "cbmf-model/1";

/// The fitted hyper-parameters Ω = {λ, R, σ0} (paper eq. 11) — recorded so
/// a loaded artifact documents the prior that produced its coefficients.
#[derive(Debug, Clone)]
pub struct Hyper {
    /// Per-basis prior scales λ (length M).
    pub lambda: Vec<f64>,
    /// State correlation matrix R (K × K).
    pub r: Matrix,
    /// Observation noise σ0.
    pub sigma0: f64,
}

/// A serializable fitted model: the MAP point estimate, optionally the
/// hyper-parameters behind it, and optionally the posterior factors that
/// reproduce predictive variance bitwise.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    model: PerStateModel,
    hyper: Option<Hyper>,
    predictive: Option<PredictiveParts>,
}

impl ModelArtifact {
    /// Wraps a bare MAP model (no hyper-parameters, no uncertainty).
    pub fn from_model(model: PerStateModel) -> Self {
        ModelArtifact {
            model,
            hyper: None,
            predictive: None,
        }
    }

    /// Captures a fit outcome: the model plus, when the fit retained a
    /// Bayesian prior (any rung above the S-OMP fallback), the σ0/λ/R
    /// hyper-parameters.
    pub fn from_fit(outcome: &FitOutcome) -> Self {
        ModelArtifact {
            model: outcome.model().clone(),
            hyper: outcome.prior().map(|p| Hyper {
                lambda: p.lambda().to_vec(),
                r: p.r().clone(),
                sigma0: p.sigma0(),
            }),
            predictive: None,
        }
    }

    /// Attaches the posterior-predictive factors, enabling the uncertainty
    /// path after a load.
    #[must_use]
    pub fn with_predictive(mut self, predictive: &PosteriorPredictive) -> Self {
        self.predictive = Some(predictive.to_parts());
        self
    }

    /// Assembles an artifact from decoded parts. Callers (the binary
    /// reader) must already have routed the model through
    /// [`PerStateModel::new`]; predictive factors are validated on first
    /// use, exactly as after [`from_json`](Self::from_json).
    pub(crate) fn from_parts(
        model: PerStateModel,
        hyper: Option<Hyper>,
        predictive: Option<PredictiveParts>,
    ) -> Self {
        ModelArtifact {
            model,
            hyper,
            predictive,
        }
    }

    /// The MAP model.
    pub fn model(&self) -> &PerStateModel {
        &self.model
    }

    /// The recorded hyper-parameters, if the producing fit had any.
    pub fn hyper(&self) -> Option<&Hyper> {
        self.hyper.as_ref()
    }

    /// The serialized posterior factors, if attached.
    pub fn predictive_parts(&self) -> Option<&PredictiveParts> {
        self.predictive.as_ref()
    }

    /// Renders the canonical `cbmf-model/1` document.
    pub fn to_json(&self) -> Json {
        let basis = Json::obj([
            (
                "family".to_string(),
                Json::Str(family_str(self.model.basis_spec()).to_string()),
            ),
            (
                "num_variables".to_string(),
                Json::Num(self.model.num_variables() as f64),
            ),
        ]);
        let model = Json::obj([
            (
                "support".to_string(),
                Json::Arr(
                    self.model
                        .support()
                        .iter()
                        .map(|&m| Json::Num(m as f64))
                        .collect(),
                ),
            ),
            (
                "coefficients".to_string(),
                matrix_rows_json(self.model.coefficients()),
            ),
            ("intercepts".to_string(), vec_json(self.model.intercepts())),
        ]);
        let hyper = match &self.hyper {
            None => Json::Null,
            Some(h) => Json::obj([
                ("lambda".to_string(), vec_json(&h.lambda)),
                ("r".to_string(), matrix_rows_json(&h.r)),
                ("sigma0".to_string(), Json::Num(h.sigma0)),
            ]),
        };
        let predictive = match &self.predictive {
            None => Json::Null,
            Some(p) => Json::obj([
                ("chol_l".to_string(), packed_lower_json(&p.chol_l)),
                ("chol_jitter".to_string(), Json::Num(p.chol_jitter)),
                ("ciy".to_string(), vec_json(&p.ciy)),
                (
                    "bases".to_string(),
                    Json::Arr(p.bases.iter().map(matrix_rows_json).collect()),
                ),
                (
                    "basis_means".to_string(),
                    Json::Arr(p.basis_means.iter().map(|v| vec_json(v)).collect()),
                ),
                ("y_means".to_string(), vec_json(&p.y_means)),
                ("lambda".to_string(), vec_json(&p.lambda)),
                ("r".to_string(), matrix_rows_json(&p.r)),
                ("sigma0".to_string(), Json::Num(p.sigma0)),
            ]),
        };
        Json::obj([
            ("schema".to_string(), Json::Str(MODEL_SCHEMA.to_string())),
            ("basis".to_string(), basis),
            ("model".to_string(), model),
            ("hyper".to_string(), hyper),
            ("predictive".to_string(), predictive),
        ])
    }

    /// The exact bytes [`save`](Self::save) writes: canonical pretty JSON
    /// plus a trailing newline.
    pub fn to_canonical_string(&self) -> String {
        format!("{}\n", self.to_json().to_pretty())
    }

    /// Rebuilds an artifact from a parsed document, re-validating every
    /// structural invariant (the model goes back through
    /// [`PerStateModel::new`], the factor through the predictive-parts
    /// checks on first use).
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] on a wrong schema, unknown basis family, or
    /// any shape/type disagreement.
    pub fn from_json(doc: &Json) -> Result<Self, ServeError> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == MODEL_SCHEMA => {}
            Some(s) => {
                return Err(ServeError::Invalid(format!(
                    "schema '{s}' is not '{MODEL_SCHEMA}' — newer formats need a newer reader"
                )))
            }
            None => return Err(ServeError::Invalid("missing 'schema' field".to_string())),
        }

        let basis = doc
            .get("basis")
            .ok_or_else(|| ServeError::Invalid("missing 'basis' section".to_string()))?;
        let family = basis
            .get("family")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::Invalid("basis: missing 'family'".to_string()))?;
        let basis_spec = family_from_str(family)?;
        let num_variables = get_usize(basis, "num_variables", "basis")?;

        let model = doc
            .get("model")
            .ok_or_else(|| ServeError::Invalid("missing 'model' section".to_string()))?;
        let support: Vec<usize> = get_arr(model, "support", "model")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| ServeError::Invalid("model: bad support index".to_string()))
            })
            .collect::<Result<_, _>>()?;
        let coefficients = matrix_from_json(model.get("coefficients"), "model.coefficients")?;
        let intercepts = vec_from_json(model.get("intercepts"), "model.intercepts")?;
        let model =
            PerStateModel::new(basis_spec, num_variables, support, coefficients, intercepts)
                .map_err(|e| ServeError::Invalid(format!("model: {e}")))?;

        let hyper = match doc.get("hyper") {
            None | Some(Json::Null) => None,
            Some(h) => Some(Hyper {
                lambda: vec_from_json(h.get("lambda"), "hyper.lambda")?,
                r: matrix_from_json(h.get("r"), "hyper.r")?,
                sigma0: get_f64(h, "sigma0", "hyper")?,
            }),
        };

        let predictive = match doc.get("predictive") {
            None | Some(Json::Null) => None,
            Some(p) => {
                let bases = get_arr(p, "bases", "predictive")?
                    .iter()
                    .enumerate()
                    .map(|(k, b)| matrix_from_json(Some(b), &format!("predictive.bases[{k}]")))
                    .collect::<Result<Vec<_>, _>>()?;
                let basis_means = get_arr(p, "basis_means", "predictive")?
                    .iter()
                    .enumerate()
                    .map(|(k, v)| vec_from_json(Some(v), &format!("predictive.basis_means[{k}]")))
                    .collect::<Result<Vec<_>, _>>()?;
                Some(PredictiveParts {
                    chol_l: packed_lower_from_json(p.get("chol_l"))?,
                    chol_jitter: get_f64(p, "chol_jitter", "predictive")?,
                    ciy: vec_from_json(p.get("ciy"), "predictive.ciy")?,
                    bases,
                    basis_means,
                    y_means: vec_from_json(p.get("y_means"), "predictive.y_means")?,
                    lambda: vec_from_json(p.get("lambda"), "predictive.lambda")?,
                    r: matrix_from_json(p.get("r"), "predictive.r")?,
                    sigma0: get_f64(p, "sigma0", "predictive")?,
                    basis_spec,
                })
            }
        };

        Ok(ModelArtifact {
            model,
            hyper,
            predictive,
        })
    }

    /// Writes the canonical document to `path`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), ServeError> {
        std::fs::write(path, self.to_canonical_string())?;
        Ok(())
    }

    /// Reads and validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Parse`] / [`ServeError::Invalid`]
    /// depending on which layer rejects the file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, ServeError> {
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text)?;
        Self::from_json(&doc)
    }
}

fn family_str(spec: BasisSpec) -> &'static str {
    match spec {
        BasisSpec::Linear => "linear",
        BasisSpec::LinearSquares => "linear_squares",
        // `BasisSpec` is non_exhaustive; a new family must be given a name
        // here before it can be serialized.
        _ => unreachable!("unnamed basis family cannot be serialized"),
    }
}

fn family_from_str(s: &str) -> Result<BasisSpec, ServeError> {
    match s {
        "linear" => Ok(BasisSpec::Linear),
        "linear_squares" => Ok(BasisSpec::LinearSquares),
        other => Err(ServeError::Invalid(format!(
            "unknown basis family '{other}'"
        ))),
    }
}

/// The binary (`cbmf-model/2`) code of a basis family; must stay in sync
/// with [`family_from_code`].
pub(crate) fn family_code(spec: BasisSpec) -> u32 {
    match spec {
        BasisSpec::Linear => 0,
        BasisSpec::LinearSquares => 1,
        // `BasisSpec` is non_exhaustive; a new family must be given a code
        // here before it can be serialized.
        _ => unreachable!("unnamed basis family cannot be serialized"),
    }
}

/// Decodes a binary basis-family code.
pub(crate) fn family_from_code(code: u32) -> Result<BasisSpec, ServeError> {
    match code {
        0 => Ok(BasisSpec::Linear),
        1 => Ok(BasisSpec::LinearSquares),
        other => Err(ServeError::Invalid(format!(
            "unknown basis family code {other}"
        ))),
    }
}

fn vec_json(v: &[f64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())
}

fn matrix_rows_json(m: &Matrix) -> Json {
    Json::Arr((0..m.rows()).map(|i| vec_json(m.row(i))).collect())
}

/// The lower triangle of a square matrix, row by row (row i carries i+1
/// entries) — halves the dominant artifact section.
fn packed_lower_json(l: &Matrix) -> Json {
    Json::Arr((0..l.rows()).map(|i| vec_json(&l.row(i)[..=i])).collect())
}

fn get_f64(obj: &Json, key: &str, ctx: &str) -> Result<f64, ServeError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ServeError::Invalid(format!("{ctx}: missing or non-numeric '{key}'")))
}

fn get_usize(obj: &Json, key: &str, ctx: &str) -> Result<usize, ServeError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .map(|u| u as usize)
        .ok_or_else(|| ServeError::Invalid(format!("{ctx}: missing or non-integer '{key}'")))
}

fn get_arr<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], ServeError> {
    obj.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Invalid(format!("{ctx}: missing or non-array '{key}'")))
}

fn vec_from_json(v: Option<&Json>, ctx: &str) -> Result<Vec<f64>, ServeError> {
    let arr = v
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Invalid(format!("{ctx}: missing or non-array")))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| ServeError::Invalid(format!("{ctx}: non-numeric entry")))
        })
        .collect()
}

fn matrix_from_json(v: Option<&Json>, ctx: &str) -> Result<Matrix, ServeError> {
    let arr = v
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Invalid(format!("{ctx}: missing or non-array")))?;
    let rows: Vec<Vec<f64>> = arr
        .iter()
        .enumerate()
        .map(|(i, r)| vec_from_json(Some(r), &format!("{ctx}[{i}]")))
        .collect::<Result<_, _>>()?;
    if rows.is_empty() {
        return Ok(Matrix::zeros(0, 0));
    }
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    Matrix::from_rows(&refs).map_err(|e| ServeError::Invalid(format!("{ctx}: {e}")))
}

fn packed_lower_from_json(v: Option<&Json>) -> Result<Matrix, ServeError> {
    let ctx = "predictive.chol_l";
    let arr = v
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Invalid(format!("{ctx}: missing or non-array")))?;
    let n = arr.len();
    let mut l = Matrix::zeros(n, n);
    for (i, row) in arr.iter().enumerate() {
        let vals = vec_from_json(Some(row), &format!("{ctx}[{i}]"))?;
        if vals.len() != i + 1 {
            return Err(ServeError::Invalid(format!(
                "{ctx}[{i}]: packed row has {} entries, expected {}",
                vals.len(),
                i + 1
            )));
        }
        for (j, x) in vals.into_iter().enumerate() {
            l[(i, j)] = x;
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> PerStateModel {
        let coeffs = Matrix::from_rows(&[&[2.0, -1.0], &[3.0, 0.5]]).unwrap();
        PerStateModel::new(BasisSpec::Linear, 3, vec![0, 2], coeffs, vec![1.0, -0.5]).unwrap()
    }

    #[test]
    fn map_only_artifact_round_trips_bytes() {
        let a = ModelArtifact::from_model(toy_model());
        let text = a.to_canonical_string();
        let b = ModelArtifact::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(text, b.to_canonical_string());
        assert!(b.hyper().is_none() && b.predictive_parts().is_none());
        assert_eq!(b.model().support(), a.model().support());
    }

    #[test]
    fn schema_and_family_are_enforced() {
        let a = ModelArtifact::from_model(toy_model());
        let mut doc = a.to_json();
        if let Json::Obj(m) = &mut doc {
            m.insert("schema".to_string(), Json::Str("cbmf-model/2".to_string()));
        }
        let err = ModelArtifact::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");

        let mut doc = a.to_json();
        if let Json::Obj(m) = &mut doc {
            let mut basis = m["basis"].clone();
            if let Json::Obj(b) = &mut basis {
                b.insert("family".to_string(), Json::Str("fourier".to_string()));
            }
            m.insert("basis".to_string(), basis);
        }
        let err = ModelArtifact::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("fourier"), "{err}");
    }

    #[test]
    fn unknown_extra_keys_are_ignored() {
        let a = ModelArtifact::from_model(toy_model());
        let mut doc = a.to_json();
        if let Json::Obj(m) = &mut doc {
            m.insert("future_field".to_string(), Json::Num(42.0));
        }
        let b = ModelArtifact::from_json(&doc).unwrap();
        assert_eq!(b.model().support(), a.model().support());
    }

    #[test]
    fn corrupt_model_sections_are_rejected() {
        let a = ModelArtifact::from_model(toy_model());
        // Unsorted support must be caught by PerStateModel::new on load.
        let mut doc = a.to_json();
        if let Json::Obj(m) = &mut doc {
            let mut model = m["model"].clone();
            if let Json::Obj(mm) = &mut model {
                mm.insert(
                    "support".to_string(),
                    Json::Arr(vec![Json::Num(2.0), Json::Num(0.0)]),
                );
            }
            m.insert("model".to_string(), model);
        }
        assert!(ModelArtifact::from_json(&doc).is_err());
        assert!(ModelArtifact::from_json(&Json::Null).is_err());
    }

    #[test]
    fn packed_lower_triangle_round_trips() {
        let l =
            Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.5, 1.5, 0.0], &[-0.25, 0.75, 1.0]]).unwrap();
        let json = packed_lower_json(&l);
        let back = packed_lower_from_json(Some(&json)).unwrap();
        for (p, q) in l.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // A ragged packed row is rejected.
        let bad = Json::Arr(vec![Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])]);
        assert!(packed_lower_from_json(Some(&bad)).is_err());
    }
}
