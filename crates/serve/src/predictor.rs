//! The blocked batch prediction engine.
//!
//! Serving evaluates one fitted model at many variation samples — the
//! yield-estimation inner loop. The engine partitions the output rows into
//! cache-friendly tiles, evaluates the basis dictionary once per sample
//! into pooled workspace scratch (`cbmf_parallel::workspace`), and reuses
//! it across all K states; workers write their rows of the output matrix
//! in place, so steady-state batches perform no per-row heap allocation
//! and results are bitwise identical to the per-sample scalar path at any
//! thread count (each output element depends only on its own row).

use cbmf::{PerStateModel, PosteriorPredictive};
use cbmf_linalg::Matrix;
use cbmf_trace::{Counter, Gauge};

use crate::artifact::ModelArtifact;
use crate::error::ServeError;

/// Individual (sample, state) predictions served.
static SERVE_PREDICTIONS: Counter = Counter::new("serve.predictions");
/// Batch calls served.
static SERVE_BATCHES: Counter = Counter::new("serve.batches");
/// Multiply-accumulates performed by the blocked MAP path (N·K·|support|).
static SERVE_BLOCKED_MACS: Counter = Counter::new("serve.blocked_macs");
/// Sample count of the most recent batch.
static SERVE_BATCH_SIZE: Gauge = Gauge::new("serve.batch_size");

/// Default tile height: 64 rows ≈ a few KB of basis evaluations — resident
/// in L1/L2 while all K states consume them.
const DEFAULT_TILE_ROWS: usize = 64;

/// A blocked batch evaluator over a fitted model, with an optional exact
/// uncertainty path when the artifact carried posterior factors.
#[derive(Debug)]
pub struct BatchPredictor {
    model: PerStateModel,
    predictive: Option<PosteriorPredictive>,
    tile_rows: usize,
}

impl BatchPredictor {
    /// Serves a bare MAP model (mean predictions only).
    pub fn new(model: PerStateModel) -> Self {
        BatchPredictor {
            model,
            predictive: None,
            tile_rows: DEFAULT_TILE_ROWS,
        }
    }

    /// Builds a predictor from a loaded artifact, rebuilding the posterior
    /// predictive when the artifact carries its factors.
    ///
    /// # Errors
    ///
    /// [`ServeError::Cbmf`] if the predictive parts are mutually
    /// inconsistent (a hand-edited artifact).
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, ServeError> {
        let predictive = artifact
            .predictive_parts()
            .map(|p| PosteriorPredictive::from_parts(p.clone()))
            .transpose()?;
        Ok(BatchPredictor {
            model: artifact.model().clone(),
            predictive,
            tile_rows: DEFAULT_TILE_ROWS,
        })
    }

    /// Overrides the tile height (clamped to at least one row).
    #[must_use]
    pub fn with_tile_rows(mut self, rows: usize) -> Self {
        self.tile_rows = rows.max(1);
        self
    }

    /// The served model.
    pub fn model(&self) -> &PerStateModel {
        &self.model
    }

    /// Whether [`predict_batch_with_uncertainty`](Self::predict_batch_with_uncertainty)
    /// is available.
    pub fn has_uncertainty(&self) -> bool {
        self.predictive.is_some()
    }

    /// Evaluates the MAP model at every row of `xs` (N × d) for every
    /// state, returning the N × K mean matrix.
    ///
    /// Bitwise equal to calling [`PerStateModel::predict`] per (row, state)
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] if `xs` has the wrong column count.
    pub fn predict_batch(&self, xs: &Matrix) -> Result<Matrix, ServeError> {
        let (n, d) = xs.shape();
        if d != self.model.num_variables() {
            return Err(ServeError::Invalid(format!(
                "batch has {d} variables, model expects {}",
                self.model.num_variables()
            )));
        }
        let _span = cbmf_trace::span("serve_batch");
        let k = self.model.num_states();
        let support_len = self.model.support().len();
        SERVE_BATCHES.inc();
        SERVE_BATCH_SIZE.set(n as f64);
        SERVE_PREDICTIONS.add((n * k) as u64);
        SERVE_BLOCKED_MACS.add((n * k * support_len) as u64);

        let m = self.model.basis_spec().num_basis(d);
        let spec = self.model.basis_spec();
        let mut out = Matrix::zeros(n, k);
        // Workers write their own rows of `out` in place; the basis scratch
        // is pooled workspace memory (`eval_into` overwrites all m entries,
        // so a dirty recycled buffer is safe), leaving the row loop free of
        // heap allocation in steady state.
        cbmf_parallel::par_rows_mut(
            out.as_mut_slice(),
            k.max(1),
            self.tile_rows,
            |row0, rows| {
                let mut ws = cbmf_parallel::workspace::acquire();
                let basis = ws.one(m);
                for (local, out_row) in rows.chunks_mut(k.max(1)).enumerate() {
                    spec.eval_into(xs.row(row0 + local), basis);
                    for (state, slot) in out_row.iter_mut().enumerate() {
                        *slot = self.model.predict_from_basis(state, basis);
                    }
                }
            },
        );
        Ok(out)
    }

    /// Evaluates predictive mean **and variance** at every row of `xs` for
    /// every state, returning two N × K matrices.
    ///
    /// Each tile shares one multi-RHS triangular solve through
    /// [`PosteriorPredictive::predict_tile`]; results are bitwise equal to
    /// per-sample [`PosteriorPredictive::predict`] at any thread count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] if the artifact carried no posterior factors
    /// or `xs` has the wrong column count; [`ServeError::Cbmf`] on a
    /// modeling-layer failure.
    pub fn predict_batch_with_uncertainty(
        &self,
        xs: &Matrix,
    ) -> Result<(Matrix, Matrix), ServeError> {
        let Some(predictive) = &self.predictive else {
            return Err(ServeError::Invalid(
                "artifact carries no posterior factors — re-save with ModelArtifact::with_predictive"
                    .to_string(),
            ));
        };
        let (n, d) = xs.shape();
        if d != self.model.num_variables() {
            return Err(ServeError::Invalid(format!(
                "batch has {d} variables, model expects {}",
                self.model.num_variables()
            )));
        }
        let _span = cbmf_trace::span("serve_batch_uncertainty");
        let k = predictive.num_states();
        SERVE_BATCHES.inc();
        SERVE_BATCH_SIZE.set(n as f64);
        SERVE_PREDICTIONS.add((n * k) as u64);

        let mut means = Matrix::zeros(n, k);
        let mut vars = Matrix::zeros(n, k);
        let tile = self.tile_rows;
        // Tiles run sequentially: the triangular solve inside predict_tile
        // already fans the tile's columns out over cbmf-parallel, and
        // nesting fork-joins would multiply thread counts for no gain.
        let mut lo = 0;
        while lo < n {
            let hi = (lo + tile).min(n);
            let rows: Vec<&[f64]> = (lo..hi).map(|i| xs.row(i)).collect();
            for state in 0..k {
                let col = predictive.predict_tile(state, &rows)?;
                for (local, (mean, var)) in col.into_iter().enumerate() {
                    means[(lo + local, state)] = mean;
                    vars[(lo + local, state)] = var;
                }
            }
            lo = hi;
        }
        Ok((means, vars))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbmf::BasisSpec;

    fn toy_model(states: usize, d: usize) -> PerStateModel {
        let support: Vec<usize> = (0..d).step_by(2).collect();
        let coeffs = Matrix::from_fn(states, support.len(), |k, j| {
            ((k * 7 + j * 3) as f64 * 0.23).sin()
        });
        let intercepts: Vec<f64> = (0..states).map(|k| k as f64 * 0.5 - 1.0).collect();
        PerStateModel::new(BasisSpec::LinearSquares, d, support, coeffs, intercepts).unwrap()
    }

    #[test]
    fn batch_matches_per_sample_bitwise_at_any_thread_count() {
        let model = toy_model(5, 9);
        let xs = Matrix::from_fn(131, 9, |i, j| ((i * 9 + j) as f64 * 0.17).cos());
        let predictor = BatchPredictor::new(model.clone()).with_tile_rows(16);
        let out1 = cbmf_parallel::with_threads(1, || predictor.predict_batch(&xs).unwrap());
        let out8 = cbmf_parallel::with_threads(8, || predictor.predict_batch(&xs).unwrap());
        for (p, q) in out1.as_slice().iter().zip(out8.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        for i in 0..xs.rows() {
            for state in 0..5 {
                let scalar = model.predict(state, xs.row(i)).unwrap();
                assert_eq!(out8[(i, state)].to_bits(), scalar.to_bits());
            }
        }
    }

    #[test]
    fn odd_tile_boundaries_are_exact() {
        let model = toy_model(2, 4);
        let xs = Matrix::from_fn(7, 4, |i, j| (i + j) as f64 * 0.3);
        for tile in [1, 2, 3, 7, 64] {
            let predictor = BatchPredictor::new(model.clone()).with_tile_rows(tile);
            let out = predictor.predict_batch(&xs).unwrap();
            assert_eq!(out.shape(), (7, 2));
            for i in 0..7 {
                for state in 0..2 {
                    let scalar = model.predict(state, xs.row(i)).unwrap();
                    assert_eq!(out[(i, state)].to_bits(), scalar.to_bits());
                }
            }
        }
    }

    #[test]
    fn dimension_mismatch_and_missing_uncertainty_are_rejected() {
        let predictor = BatchPredictor::new(toy_model(2, 4));
        assert!(predictor.predict_batch(&Matrix::zeros(3, 5)).is_err());
        assert!(!predictor.has_uncertainty());
        assert!(predictor
            .predict_batch_with_uncertainty(&Matrix::zeros(3, 4))
            .is_err());
    }

    #[test]
    fn serve_counters_record_batch_shape() {
        cbmf_trace::set_enabled(true);
        cbmf_trace::reset();
        let predictor = BatchPredictor::new(toy_model(3, 6));
        let xs = Matrix::zeros(10, 6);
        predictor.predict_batch(&xs).unwrap();
        let snap = cbmf_trace::snapshot();
        cbmf_trace::clear_enabled_override();
        assert_eq!(snap.counters.get("serve.predictions"), Some(&30));
        assert_eq!(snap.counters.get("serve.batches"), Some(&1));
        // 3 support columns (0, 2, 4) × 10 samples × 3 states.
        assert_eq!(snap.counters.get("serve.blocked_macs"), Some(&90));
        assert_eq!(snap.gauges.get("serve.batch_size"), Some(&10.0));
    }
}
