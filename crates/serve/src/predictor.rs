//! The blocked batch prediction engine.
//!
//! Serving evaluates one fitted model at many variation samples — the
//! yield-estimation inner loop. The engine partitions the output rows into
//! cache-friendly tiles and writes each worker's rows of the output matrix
//! in place, so steady-state batches perform no per-row heap allocation
//! and results are bitwise identical to the per-sample scalar path at any
//! thread count (each output element depends only on its own row).
//!
//! # The fused basis → GEMM path
//!
//! The historic ("materialized") path evaluates the full basis dictionary
//! (M values) per sample into pooled scratch, then gathers the |support|
//! entries each state's coefficient row touches. The fused path (default,
//! `CBMF_FUSE_PREDICT=0` or [`BatchPredictor::with_fused`] to disable)
//! instead evaluates **only the support columns** of each tile directly
//! into a packed `tile_rows × |support|` panel — the same layout the
//! blocked GEMM packs its left operand into — and accumulates all K states
//! from that panel with unit-stride reads and a transposed `|support| × K`
//! coefficient panel built once at construction. Per output element the
//! accumulation is `intercept + Σ_j coeff[j] · b_{support[j]}(x)` in
//! ascending `j`, the exact operation sequence of
//! [`PerStateModel::predict_from_basis`], and the support evaluations use
//! the same expressions as the full dictionary — so fused output is
//! bitwise identical to the materialized path (and to per-sample
//! prediction) at any thread count.

use std::sync::OnceLock;

use cbmf::{PerStateModel, PosteriorPredictive};
use cbmf_linalg::Matrix;
use cbmf_trace::{Counter, Gauge};

use crate::artifact::ModelArtifact;
use crate::error::ServeError;

/// Individual (sample, state) predictions served.
static SERVE_PREDICTIONS: Counter = Counter::new("serve.predictions");
/// Batch calls served.
static SERVE_BATCHES: Counter = Counter::new("serve.batches");
/// Multiply-accumulates performed by the blocked MAP path (N·K·|support|).
static SERVE_BLOCKED_MACS: Counter = Counter::new("serve.blocked_macs");
/// Row tiles served through the fused basis→GEMM path.
static SERVE_FUSED_TILES: Counter = Counter::new("serve.fused_tiles");
/// Sample count of the most recent batch.
static SERVE_BATCH_SIZE: Gauge = Gauge::new("serve.batch_size");

/// Default tile height: 64 rows ≈ a few KB of basis evaluations — resident
/// in L1/L2 while all K states consume them.
const DEFAULT_TILE_ROWS: usize = 64;

/// Whether the fused path is on by default: `CBMF_FUSE_PREDICT`, read once
/// per process (same policy as the kernel ISA and thread-count knobs —
/// `std::env::var` locks and allocates, which the serving hot path must not
/// pay per batch). Any value other than `0` — including unset — means on.
fn fuse_default() -> bool {
    static FUSE: OnceLock<bool> = OnceLock::new();
    *FUSE.get_or_init(|| {
        std::env::var("CBMF_FUSE_PREDICT")
            .map(|v| v.trim() != "0")
            .unwrap_or(true)
    })
}

/// A blocked batch evaluator over a fitted model, with an optional exact
/// uncertainty path when the artifact carried posterior factors.
#[derive(Debug)]
pub struct BatchPredictor {
    model: PerStateModel,
    predictive: Option<PosteriorPredictive>,
    tile_rows: usize,
    fused: bool,
    /// `|support| × K` transpose of the model's coefficient block: entry
    /// `(j, state)` at `j * K + state`, so the fused per-sample loop reads
    /// all states' coefficients for one support column contiguously.
    coeffs_t: Vec<f64>,
}

/// Transposes the `K × |support|` coefficient block into the `j`-major
/// layout the fused accumulation streams.
fn transpose_coeffs(model: &PerStateModel) -> Vec<f64> {
    let k = model.num_states();
    let s = model.support().len();
    let coeffs = model.coefficients();
    let mut out = vec![0.0; s * k];
    for state in 0..k {
        for (j, &c) in coeffs.row(state).iter().enumerate() {
            out[j * k + state] = c;
        }
    }
    out
}

impl BatchPredictor {
    /// Serves a bare MAP model (mean predictions only).
    pub fn new(model: PerStateModel) -> Self {
        let coeffs_t = transpose_coeffs(&model);
        BatchPredictor {
            model,
            predictive: None,
            tile_rows: DEFAULT_TILE_ROWS,
            fused: fuse_default(),
            coeffs_t,
        }
    }

    /// Builds a predictor from a loaded artifact, rebuilding the posterior
    /// predictive when the artifact carries its factors.
    ///
    /// # Errors
    ///
    /// [`ServeError::Cbmf`] if the predictive parts are mutually
    /// inconsistent (a hand-edited artifact).
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, ServeError> {
        let predictive = artifact
            .predictive_parts()
            .map(|p| PosteriorPredictive::from_parts(p.clone()))
            .transpose()?;
        let model = artifact.model().clone();
        let coeffs_t = transpose_coeffs(&model);
        Ok(BatchPredictor {
            model,
            predictive,
            tile_rows: DEFAULT_TILE_ROWS,
            fused: fuse_default(),
            coeffs_t,
        })
    }

    /// Overrides the tile height (clamped to at least one row).
    #[must_use]
    pub fn with_tile_rows(mut self, rows: usize) -> Self {
        self.tile_rows = rows.max(1);
        self
    }

    /// Forces the fused basis→GEMM path on or off, overriding the
    /// process-wide `CBMF_FUSE_PREDICT` default. Both paths return bitwise
    /// identical results; this exists for benchmarking and CI equivalence
    /// runs.
    #[must_use]
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Whether batch mean prediction takes the fused path.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// The served model.
    pub fn model(&self) -> &PerStateModel {
        &self.model
    }

    /// Whether [`predict_batch_with_uncertainty`](Self::predict_batch_with_uncertainty)
    /// is available.
    pub fn has_uncertainty(&self) -> bool {
        self.predictive.is_some()
    }

    /// Evaluates the MAP model at every row of `xs` (N × d) for every
    /// state, returning the N × K mean matrix.
    ///
    /// Bitwise equal to calling [`PerStateModel::predict`] per (row, state)
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] if `xs` has the wrong column count.
    pub fn predict_batch(&self, xs: &Matrix) -> Result<Matrix, ServeError> {
        let (n, d) = xs.shape();
        if d != self.model.num_variables() {
            return Err(ServeError::Invalid(format!(
                "batch has {d} variables, model expects {}",
                self.model.num_variables()
            )));
        }
        let _span = cbmf_trace::span("serve_batch");
        let k = self.model.num_states();
        let support_len = self.model.support().len();
        SERVE_BATCHES.inc();
        SERVE_BATCH_SIZE.set(n as f64);
        SERVE_PREDICTIONS.add((n * k) as u64);
        SERVE_BLOCKED_MACS.add((n * k * support_len) as u64);

        let m = self.model.basis_spec().num_basis(d);
        let spec = self.model.basis_spec();
        let mut out = Matrix::zeros(n, k);
        // Workers write their own rows of `out` in place; all scratch is
        // pooled workspace memory that the evaluators fully overwrite (so
        // dirty recycled buffers are safe), leaving the row loop free of
        // heap allocation in steady state.
        if self.fused {
            let support = self.model.support();
            let s = support.len();
            let intercepts = self.model.intercepts();
            let tile = self.tile_rows;
            cbmf_parallel::par_rows_mut(out.as_mut_slice(), k.max(1), tile, |row0, rows| {
                let mut ws = cbmf_parallel::workspace::acquire();
                // A packed `tile × s` support panel, same row-major
                // interleave as the blocked GEMM's left-operand pack.
                let panel = ws.one(tile * s.max(1));
                let mut lo = 0;
                let nrows = rows.len() / k.max(1);
                while lo < nrows {
                    let hi = (lo + tile).min(nrows);
                    for local in lo..hi {
                        spec.eval_support_into(
                            xs.row(row0 + local),
                            support,
                            &mut panel[(local - lo) * s..(local - lo) * s + s],
                        );
                    }
                    SERVE_FUSED_TILES.inc();
                    for local in lo..hi {
                        let out_row = &mut rows[local * k..local * k + k];
                        out_row.copy_from_slice(intercepts);
                        let brow = &panel[(local - lo) * s..(local - lo) * s + s];
                        for (j, &b) in brow.iter().enumerate() {
                            let crow = &self.coeffs_t[j * k..j * k + k];
                            for (slot, &c) in out_row.iter_mut().zip(crow) {
                                *slot += c * b;
                            }
                        }
                    }
                    lo = hi;
                }
            });
        } else {
            cbmf_parallel::par_rows_mut(
                out.as_mut_slice(),
                k.max(1),
                self.tile_rows,
                |row0, rows| {
                    let mut ws = cbmf_parallel::workspace::acquire();
                    let basis = ws.one(m);
                    for (local, out_row) in rows.chunks_mut(k.max(1)).enumerate() {
                        spec.eval_into(xs.row(row0 + local), basis);
                        for (state, slot) in out_row.iter_mut().enumerate() {
                            *slot = self.model.predict_from_basis(state, basis);
                        }
                    }
                },
            );
        }
        Ok(out)
    }

    /// Evaluates predictive mean **and variance** at every row of `xs` for
    /// every state, returning two N × K matrices.
    ///
    /// Each tile shares one multi-RHS triangular solve through
    /// [`PosteriorPredictive::predict_tile`]; results are bitwise equal to
    /// per-sample [`PosteriorPredictive::predict`] at any thread count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] if the artifact carried no posterior factors
    /// or `xs` has the wrong column count; [`ServeError::Cbmf`] on a
    /// modeling-layer failure.
    pub fn predict_batch_with_uncertainty(
        &self,
        xs: &Matrix,
    ) -> Result<(Matrix, Matrix), ServeError> {
        let Some(predictive) = &self.predictive else {
            return Err(ServeError::Invalid(
                "artifact carries no posterior factors — re-save with ModelArtifact::with_predictive"
                    .to_string(),
            ));
        };
        let (n, d) = xs.shape();
        if d != self.model.num_variables() {
            return Err(ServeError::Invalid(format!(
                "batch has {d} variables, model expects {}",
                self.model.num_variables()
            )));
        }
        let _span = cbmf_trace::span("serve_batch_uncertainty");
        let k = predictive.num_states();
        SERVE_BATCHES.inc();
        SERVE_BATCH_SIZE.set(n as f64);
        SERVE_PREDICTIONS.add((n * k) as u64);

        let mut means = Matrix::zeros(n, k);
        let mut vars = Matrix::zeros(n, k);
        let tile = self.tile_rows;
        // Tiles run sequentially: the triangular solve inside predict_tile
        // already fans the tile's columns out over cbmf-parallel, and
        // nesting fork-joins would multiply thread counts for no gain.
        let mut lo = 0;
        while lo < n {
            let hi = (lo + tile).min(n);
            let rows: Vec<&[f64]> = (lo..hi).map(|i| xs.row(i)).collect();
            for state in 0..k {
                let col = predictive.predict_tile(state, &rows)?;
                for (local, (mean, var)) in col.into_iter().enumerate() {
                    means[(lo + local, state)] = mean;
                    vars[(lo + local, state)] = var;
                }
            }
            lo = hi;
        }
        Ok((means, vars))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbmf::BasisSpec;

    fn toy_model(states: usize, d: usize) -> PerStateModel {
        let support: Vec<usize> = (0..d).step_by(2).collect();
        let coeffs = Matrix::from_fn(states, support.len(), |k, j| {
            ((k * 7 + j * 3) as f64 * 0.23).sin()
        });
        let intercepts: Vec<f64> = (0..states).map(|k| k as f64 * 0.5 - 1.0).collect();
        PerStateModel::new(BasisSpec::LinearSquares, d, support, coeffs, intercepts).unwrap()
    }

    #[test]
    fn batch_matches_per_sample_bitwise_at_any_thread_count() {
        let model = toy_model(5, 9);
        let xs = Matrix::from_fn(131, 9, |i, j| ((i * 9 + j) as f64 * 0.17).cos());
        let predictor = BatchPredictor::new(model.clone()).with_tile_rows(16);
        let out1 = cbmf_parallel::with_threads(1, || predictor.predict_batch(&xs).unwrap());
        let out8 = cbmf_parallel::with_threads(8, || predictor.predict_batch(&xs).unwrap());
        for (p, q) in out1.as_slice().iter().zip(out8.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        for i in 0..xs.rows() {
            for state in 0..5 {
                let scalar = model.predict(state, xs.row(i)).unwrap();
                assert_eq!(out8[(i, state)].to_bits(), scalar.to_bits());
            }
        }
    }

    #[test]
    fn odd_tile_boundaries_are_exact() {
        let model = toy_model(2, 4);
        let xs = Matrix::from_fn(7, 4, |i, j| (i + j) as f64 * 0.3);
        for tile in [1, 2, 3, 7, 64] {
            let predictor = BatchPredictor::new(model.clone()).with_tile_rows(tile);
            let out = predictor.predict_batch(&xs).unwrap();
            assert_eq!(out.shape(), (7, 2));
            for i in 0..7 {
                for state in 0..2 {
                    let scalar = model.predict(state, xs.row(i)).unwrap();
                    assert_eq!(out[(i, state)].to_bits(), scalar.to_bits());
                }
            }
        }
    }

    #[test]
    fn dimension_mismatch_and_missing_uncertainty_are_rejected() {
        let predictor = BatchPredictor::new(toy_model(2, 4));
        assert!(predictor.predict_batch(&Matrix::zeros(3, 5)).is_err());
        assert!(!predictor.has_uncertainty());
        assert!(predictor
            .predict_batch_with_uncertainty(&Matrix::zeros(3, 4))
            .is_err());
    }

    #[test]
    fn fused_and_materialized_paths_are_bitwise_identical() {
        let model = toy_model(4, 11);
        let xs = Matrix::from_fn(157, 11, |i, j| ((i * 11 + j) as f64 * 0.073).sin() * 2.0);
        for tile in [1, 5, 64] {
            let fused = BatchPredictor::new(model.clone())
                .with_tile_rows(tile)
                .with_fused(true);
            let plain = BatchPredictor::new(model.clone())
                .with_tile_rows(tile)
                .with_fused(false);
            assert!(fused.is_fused() && !plain.is_fused());
            let a = fused.predict_batch(&xs).unwrap();
            let b = plain.predict_batch(&xs).unwrap();
            for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits(), "tile={tile}");
            }
        }
    }

    #[test]
    fn serve_counters_record_batch_shape() {
        cbmf_trace::set_enabled(true);
        cbmf_trace::reset();
        let predictor = BatchPredictor::new(toy_model(3, 6)).with_fused(true);
        let xs = Matrix::zeros(10, 6);
        predictor.predict_batch(&xs).unwrap();
        let snap = cbmf_trace::snapshot();
        cbmf_trace::clear_enabled_override();
        assert_eq!(snap.counters.get("serve.predictions"), Some(&30));
        assert_eq!(snap.counters.get("serve.batches"), Some(&1));
        // 3 support columns (0, 2, 4) × 10 samples × 3 states.
        assert_eq!(snap.counters.get("serve.blocked_macs"), Some(&90));
        // 10 rows at the default 64-row tile height → one fused tile.
        assert_eq!(snap.counters.get("serve.fused_tiles"), Some(&1));
        assert_eq!(snap.gauges.get("serve.batch_size"), Some(&10.0));
    }
}
