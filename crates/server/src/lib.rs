//! A std-only TCP prediction server for fitted C-BMF models.
//!
//! The serving stack below this crate ends at
//! [`cbmf_serve::BatchPredictor`]: fast, but in-process only. This crate
//! puts a socket in front of it so the measured batch-evaluation wins reach
//! *concurrent single-sample callers*:
//!
//! * [`protocol`] — a length-prefixed, checksummed binary frame format
//!   (version byte, request kind, model id, f64 payload) with a typed
//!   error taxonomy. Malformed frames are answered in-band and never kill
//!   a connection thread; only unrecoverable stream states (truncation,
//!   oversized prefixes) close the connection — cleanly, never by panic.
//! * [`PredictionServer`] — a thread-per-core accept loop over
//!   `std::net::TcpListener`; each connection gets a blocking handler
//!   thread that funnels every request through the shared
//!   [`cbmf_serve::BatchQueue`], where concurrent requests coalesce into
//!   one predictor tile within the `CBMF_SERVE_*` deadline window.
//! * [`PredictClient`] — the matching blocking client.
//!
//! Responses are bitwise identical to calling the predictor directly, at
//! any thread count and any batching window, because every predictor row
//! depends only on its own input row. The `server-smoke` CI suite pins
//! this end to end.
//!
//! Observability: `server.requests`, `server.protocol_errors`,
//! `server.batches`, `server.coalesced`, `server.rejected` counters, a
//! `server.queue_depth` gauge, and a `server.request_ns` latency histogram
//! (p50/p95/p99 in trace reports), all via `cbmf-trace`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use cbmf_serve::{BatchPredictor, ModelArtifact};
//! use cbmf_server::{PredictionServer, PredictClient, ServerConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let artifact = ModelArtifact::load("model.cbmf.json")?;
//! let predictor = Arc::new(BatchPredictor::from_artifact(&artifact)?);
//! let server = PredictionServer::bind("127.0.0.1:0", predictor, ServerConfig::default())?;
//!
//! let mut client = PredictClient::connect(server.local_addr())?;
//! let means = client.predict(&vec![0.0; 25])?;
//! # let _ = means;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod client;
pub mod protocol;
mod server;

pub use client::{ClientError, PredictClient};
pub use server::{PredictionServer, ServerConfig};
