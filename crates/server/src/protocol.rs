//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [ body_len: u32 LE ][ body: body_len bytes ]
//! ```
//!
//! A request body is
//!
//! ```text
//! [ version: u8 = 1 ][ kind: u8 ][ model_id: u32 LE ]
//! [ n_values: u32 LE ][ n_values × f64 LE ][ checksum: u64 LE ]
//! ```
//!
//! and a response body is
//!
//! ```text
//! values:  [ version ][ 0x81 ][ n_values: u32 LE ][ n × f64 LE ][ checksum ]
//! error:   [ version ][ 0xFF ][ code: u8 ][ msg_len: u16 LE ][ msg ][ checksum ]
//! ```
//!
//! The checksum is FNV-1a 64 over every body byte before it. Request kinds:
//! [`REQ_PREDICT`] (reply: K per-state means) and [`REQ_PREDICT_VAR`]
//! (reply: K means then K predictive variances).
//!
//! # Error recovery contract
//!
//! Decoding distinguishes *recoverable* frames — fully delimited on the
//! wire but semantically bad (wrong version, unknown kind, checksum
//! mismatch, inconsistent lengths) — from *fatal* stream states where
//! resynchronization is impossible (EOF mid-frame, a length prefix beyond
//! [`MAX_FRAME_BYTES`]). The server answers recoverable frames with a typed
//! in-band [`Response::Error`] and keeps the connection; fatal ones get a
//! best-effort error frame and a clean close. Neither path ever panics —
//! the protocol property suite feeds truncations, oversized prefixes and
//! bit flips to pin that down.

use std::io::{self, Read, Write};

/// Protocol version byte stamped into every body.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on `body_len`. Large enough for paper-scale samples
/// (d ≈ 1300 → ~10 KiB) with orders-of-magnitude headroom; a prefix beyond
/// it is treated as stream corruption, not an allocation request.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Request kind: predict per-state means for one sample.
pub const REQ_PREDICT: u8 = 1;
/// Request kind: predict per-state means and predictive variances.
pub const REQ_PREDICT_VAR: u8 = 2;
/// Response kind carrying f64 values.
pub const RESP_VALUES: u8 = 0x81;
/// Response kind carrying a typed error.
pub const RESP_ERROR: u8 = 0xFF;

/// Fixed request-body bytes around the payload: version, kind, model id,
/// value count, checksum.
const REQ_OVERHEAD: usize = 1 + 1 + 4 + 4 + 8;

/// What a request asks the evaluator for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Per-state means only.
    Predict,
    /// Per-state means followed by predictive variances.
    PredictVar,
}

impl RequestKind {
    /// The wire byte for this kind.
    pub fn code(self) -> u8 {
        match self {
            RequestKind::Predict => REQ_PREDICT,
            RequestKind::PredictVar => REQ_PREDICT_VAR,
        }
    }
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// What to compute.
    pub kind: RequestKind,
    /// Which model to evaluate (a single-model server serves id 0).
    pub model_id: u32,
    /// The sample, one value per model variable.
    pub sample: Vec<f64>,
}

/// One decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful evaluation: the requested values.
    Values(Vec<f64>),
    /// Typed in-band failure.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Typed causes carried by error responses. The numeric codes are part of
/// the wire protocol; add at the end, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Version byte was not [`PROTOCOL_VERSION`].
    BadVersion = 1,
    /// Unknown request/response kind byte.
    BadKind = 2,
    /// Checksum mismatch: the frame arrived corrupted.
    BadChecksum = 3,
    /// The stream ended mid-frame.
    Truncated = 4,
    /// Length prefix beyond [`MAX_FRAME_BYTES`].
    Oversized = 5,
    /// Body lengths are mutually inconsistent.
    Malformed = 6,
    /// The requested model id is not served here.
    UnknownModel = 7,
    /// The sample length does not match the model's variable count.
    WrongDimension = 8,
    /// The batching queue hit its depth bound; retry with backoff.
    Overloaded = 9,
    /// The server is shutting down.
    Shutdown = 10,
    /// This server has no posterior factors for the uncertainty path.
    NoUncertainty = 11,
    /// The evaluator failed internally.
    Internal = 12,
}

impl ErrorCode {
    /// Decodes a wire byte back into a code.
    pub fn from_code(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadVersion,
            2 => ErrorCode::BadKind,
            3 => ErrorCode::BadChecksum,
            4 => ErrorCode::Truncated,
            5 => ErrorCode::Oversized,
            6 => ErrorCode::Malformed,
            7 => ErrorCode::UnknownModel,
            8 => ErrorCode::WrongDimension,
            9 => ErrorCode::Overloaded,
            10 => ErrorCode::Shutdown,
            11 => ErrorCode::NoUncertainty,
            12 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Decoding failure, split by whether the stream can keep going.
#[derive(Debug)]
pub enum ProtocolError {
    /// The peer closed cleanly at a frame boundary — not an error.
    Closed,
    /// Transport failure; the connection is unusable.
    Io(io::Error),
    /// A frame-level problem with a typed code.
    Frame {
        /// The typed cause (also what goes on the wire in a reply).
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
        /// When true, resynchronization is impossible and the connection
        /// must close after a best-effort error reply.
        fatal: bool,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Closed => write!(f, "peer closed the connection"),
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Frame {
                code,
                detail,
                fatal,
            } => write!(
                f,
                "{}frame error ({code:?}): {detail}",
                if *fatal { "fatal " } else { "" }
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to catch
/// the truncation/bit-flip corruption the property suite injects. The
/// implementation lives in `cbmf-serve`, where the binary `cbmf-model/2`
/// artifact sections use the same checksum; re-exported here so wire-frame
/// code keeps its historical path.
pub use cbmf_serve::fnv1a;

fn push_f64s(body: &mut Vec<u8>, values: &[f64]) {
    for v in values {
        body.extend_from_slice(&v.to_le_bits_bytes());
    }
}

/// Little-endian f64 byte helper — bit-exact, NaN-preserving.
trait F64Wire {
    fn to_le_bits_bytes(&self) -> [u8; 8];
}

impl F64Wire for f64 {
    fn to_le_bits_bytes(&self) -> [u8; 8] {
        self.to_bits().to_le_bytes()
    }
}

fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Encodes a request as one ready-to-write frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(REQ_OVERHEAD + 8 * req.sample.len());
    body.push(PROTOCOL_VERSION);
    body.push(req.kind.code());
    body.extend_from_slice(&req.model_id.to_le_bytes());
    body.extend_from_slice(&(req.sample.len() as u32).to_le_bytes());
    push_f64s(&mut body, &req.sample);
    seal(body)
}

/// Encodes a response as one ready-to-write frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    body.push(PROTOCOL_VERSION);
    match resp {
        Response::Values(values) => {
            body.push(RESP_VALUES);
            body.extend_from_slice(&(values.len() as u32).to_le_bytes());
            push_f64s(&mut body, values);
        }
        Response::Error { code, message } => {
            body.push(RESP_ERROR);
            body.push(*code as u8);
            let msg = message.as_bytes();
            let len = msg.len().min(u16::MAX as usize);
            body.extend_from_slice(&(len as u16).to_le_bytes());
            body.extend_from_slice(&msg[..len]);
        }
    }
    seal(body)
}

/// Writes one encoded frame in a single `write_all`.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    w.write_all(&encode_request(req))
}

/// Writes one encoded response frame.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    w.write_all(&encode_response(resp))
}

/// Reads a frame body: the length prefix, then exactly that many bytes.
fn read_body(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut prefix = [0u8; 4];
    // Distinguish a clean close (no bytes of a new frame) from a mid-frame
    // truncation (some bytes, then EOF).
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Err(ProtocolError::Closed)
                } else {
                    Err(ProtocolError::Frame {
                        code: ErrorCode::Truncated,
                        detail: format!("EOF after {filled} of 4 length-prefix bytes"),
                        fatal: true,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame {
            code: ErrorCode::Oversized,
            detail: format!("length prefix {len} exceeds cap {MAX_FRAME_BYTES}"),
            fatal: true,
        });
    }
    let mut body = vec![0u8; len as usize];
    match r.read_exact(&mut body) {
        Ok(()) => Ok(body),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(ProtocolError::Frame {
            code: ErrorCode::Truncated,
            detail: format!("EOF inside a {len}-byte body"),
            fatal: true,
        }),
        Err(e) => Err(ProtocolError::Io(e)),
    }
}

/// Checks the trailing checksum and returns the covered prefix.
fn verify_checksum(body: &[u8]) -> Result<&[u8], ProtocolError> {
    if body.len() < 8 {
        return Err(ProtocolError::Frame {
            code: ErrorCode::Malformed,
            detail: format!("body of {} bytes cannot hold a checksum", body.len()),
            fatal: false,
        });
    }
    let (payload, sum_bytes) = body.split_at(body.len() - 8);
    let want = u64::from_le_bytes(sum_bytes.try_into().expect("8 checksum bytes"));
    let got = fnv1a(payload);
    if got != want {
        return Err(ProtocolError::Frame {
            code: ErrorCode::BadChecksum,
            detail: format!("checksum {got:#018x} != {want:#018x}"),
            fatal: false,
        });
    }
    Ok(payload)
}

fn frame_err(code: ErrorCode, detail: String) -> ProtocolError {
    ProtocolError::Frame {
        code,
        detail,
        fatal: false,
    }
}

/// Reads and decodes one request frame.
///
/// # Errors
///
/// [`ProtocolError::Closed`] on a clean EOF between frames;
/// [`ProtocolError::Frame`] with `fatal: false` for fully-delimited but
/// invalid frames (answerable in-band) and `fatal: true` for truncation /
/// oversized prefixes; [`ProtocolError::Io`] on transport failure.
pub fn read_request(r: &mut impl Read) -> Result<Request, ProtocolError> {
    let body = read_body(r)?;
    let payload = verify_checksum(&body)?;
    if payload.len() < REQ_OVERHEAD - 8 {
        return Err(frame_err(
            ErrorCode::Malformed,
            format!("request payload of {} bytes is too short", payload.len()),
        ));
    }
    if payload[0] != PROTOCOL_VERSION {
        return Err(frame_err(
            ErrorCode::BadVersion,
            format!("version {} != {PROTOCOL_VERSION}", payload[0]),
        ));
    }
    let kind = match payload[1] {
        REQ_PREDICT => RequestKind::Predict,
        REQ_PREDICT_VAR => RequestKind::PredictVar,
        other => {
            return Err(frame_err(
                ErrorCode::BadKind,
                format!("unknown request kind {other:#04x}"),
            ))
        }
    };
    let model_id = u32::from_le_bytes(payload[2..6].try_into().expect("4 model-id bytes"));
    let n = u32::from_le_bytes(payload[6..10].try_into().expect("4 count bytes")) as usize;
    let values = &payload[10..];
    if values.len() != 8 * n {
        return Err(frame_err(
            ErrorCode::Malformed,
            format!("{n} values declared but {} payload bytes", values.len()),
        ));
    }
    let sample = values
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 value bytes"))))
        .collect();
    Ok(Request {
        kind,
        model_id,
        sample,
    })
}

/// Reads and decodes one response frame.
///
/// # Errors
///
/// Same taxonomy as [`read_request`].
pub fn read_response(r: &mut impl Read) -> Result<Response, ProtocolError> {
    let body = read_body(r)?;
    let payload = verify_checksum(&body)?;
    if payload.len() < 2 {
        return Err(frame_err(
            ErrorCode::Malformed,
            format!("response payload of {} bytes is too short", payload.len()),
        ));
    }
    if payload[0] != PROTOCOL_VERSION {
        return Err(frame_err(
            ErrorCode::BadVersion,
            format!("version {} != {PROTOCOL_VERSION}", payload[0]),
        ));
    }
    match payload[1] {
        RESP_VALUES => {
            if payload.len() < 6 {
                return Err(frame_err(
                    ErrorCode::Malformed,
                    "values response missing count".to_string(),
                ));
            }
            let n = u32::from_le_bytes(payload[2..6].try_into().expect("4 count bytes")) as usize;
            let values = &payload[6..];
            if values.len() != 8 * n {
                return Err(frame_err(
                    ErrorCode::Malformed,
                    format!("{n} values declared but {} payload bytes", values.len()),
                ));
            }
            Ok(Response::Values(
                values
                    .chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            ))
        }
        RESP_ERROR => {
            if payload.len() < 5 {
                return Err(frame_err(
                    ErrorCode::Malformed,
                    "error response missing code".to_string(),
                ));
            }
            let code = ErrorCode::from_code(payload[2]).ok_or_else(|| {
                frame_err(
                    ErrorCode::Malformed,
                    format!("unknown error code {}", payload[2]),
                )
            })?;
            let msg_len =
                u16::from_le_bytes(payload[3..5].try_into().expect("2 length bytes")) as usize;
            let msg = &payload[5..];
            if msg.len() != msg_len {
                return Err(frame_err(
                    ErrorCode::Malformed,
                    format!("{msg_len}-byte message declared but {} bytes", msg.len()),
                ));
            }
            Ok(Response::Error {
                code,
                message: String::from_utf8_lossy(msg).into_owned(),
            })
        }
        other => Err(frame_err(
            ErrorCode::BadKind,
            format!("unknown response kind {other:#04x}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_round_trips_bit_exactly() {
        let req = Request {
            kind: RequestKind::PredictVar,
            model_id: 7,
            sample: vec![1.5, -0.0, f64::MIN_POSITIVE, 3.25e300, f64::NAN],
        };
        let frame = encode_request(&req);
        let got = read_request(&mut Cursor::new(frame)).unwrap();
        assert_eq!(got.kind, req.kind);
        assert_eq!(got.model_id, req.model_id);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got.sample), bits(&req.sample), "NaN payloads survive");
    }

    #[test]
    fn response_round_trips() {
        let values = Response::Values(vec![2.0, 4.0]);
        assert_eq!(
            read_response(&mut Cursor::new(encode_response(&values))).unwrap(),
            values
        );
        let err = Response::Error {
            code: ErrorCode::Overloaded,
            message: "queue full — retry".to_string(),
        };
        assert_eq!(
            read_response(&mut Cursor::new(encode_response(&err))).unwrap(),
            err
        );
    }

    #[test]
    fn clean_eof_is_closed_and_partial_prefix_is_truncated() {
        match read_request(&mut Cursor::new(Vec::<u8>::new())) {
            Err(ProtocolError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        match read_request(&mut Cursor::new(vec![3u8, 0])) {
            Err(ProtocolError::Frame {
                code: ErrorCode::Truncated,
                fatal: true,
                ..
            }) => {}
            other => panic!("expected fatal Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_is_fatal_without_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_request(&mut Cursor::new(frame)) {
            Err(ProtocolError::Frame {
                code: ErrorCode::Oversized,
                fatal: true,
                ..
            }) => {}
            other => panic!("expected fatal Oversized, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_byte_is_a_recoverable_checksum_error() {
        let mut frame = encode_request(&Request {
            kind: RequestKind::Predict,
            model_id: 0,
            sample: vec![1.0, 2.0],
        });
        let mid = frame.len() / 2;
        frame[mid] ^= 0x40;
        match read_request(&mut Cursor::new(frame)) {
            Err(ProtocolError::Frame { fatal: false, .. }) => {}
            other => panic!("expected recoverable frame error, got {other:?}"),
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadVersion,
            ErrorCode::BadKind,
            ErrorCode::BadChecksum,
            ErrorCode::Truncated,
            ErrorCode::Oversized,
            ErrorCode::Malformed,
            ErrorCode::UnknownModel,
            ErrorCode::WrongDimension,
            ErrorCode::Overloaded,
            ErrorCode::Shutdown,
            ErrorCode::NoUncertainty,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_code(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(200), None);
    }
}
