//! The TCP front-end: thread-per-core accept loop, one handler thread per
//! connection, all requests funneled through shared [`BatchQueue`]s.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use cbmf_serve::{BatchConfig, BatchError, BatchPredictor, BatchQueue, BatchQueueStats};
use cbmf_trace::{Counter, Histogram};

use crate::protocol::{
    read_request, write_response, ErrorCode, ProtocolError, Request, RequestKind, Response,
};

static SERVER_REQUESTS: Counter = Counter::new("server.requests");
static SERVER_PROTOCOL_ERRORS: Counter = Counter::new("server.protocol_errors");
static SERVER_REQUEST_NS: Histogram = Histogram::new("server.request_ns");

/// Server tuning: batching behavior, accept parallelism, served model id.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Batching knobs shared by the mean and uncertainty queues.
    pub batch: BatchConfig,
    /// Accept-loop threads; defaults to the `cbmf-parallel` worker count
    /// (thread per core, `RAYON_NUM_THREADS`-capped).
    pub accept_threads: usize,
    /// The model id this process answers for; anything else gets
    /// [`ErrorCode::UnknownModel`].
    pub model_id: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch: BatchConfig::from_env(),
            accept_threads: cbmf_parallel::max_threads(),
            model_id: 0,
        }
    }
}

struct Queues {
    mean: BatchQueue,
    var: Option<BatchQueue>,
    model_id: u32,
}

/// A running loopback/TCP prediction server over one [`BatchPredictor`].
///
/// Binding spawns the accept threads immediately; dropping the handle shuts
/// the listener down, joins the accept threads, and fails any still-queued
/// submissions with a typed `Shutdown`.
pub struct PredictionServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepters: Vec<JoinHandle<()>>,
    queues: Arc<Queues>,
}

impl std::fmt::Debug for PredictionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionServer")
            .field("addr", &self.addr)
            .field("accepters", &self.accepters.len())
            .finish_non_exhaustive()
    }
}

impl PredictionServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral loopback port) and
    /// starts serving `predictor`. A second queue for the uncertainty path
    /// is created only when the predictor carries posterior factors;
    /// without them, `PredictVar` requests answer
    /// [`ErrorCode::NoUncertainty`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/listen).
    pub fn bind(
        addr: impl ToSocketAddrs,
        predictor: Arc<BatchPredictor>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let var = predictor
            .has_uncertainty()
            .then(|| BatchQueue::for_uncertainty(Arc::clone(&predictor), config.batch.clone()))
            .transpose()
            .expect("has_uncertainty checked");
        let queues = Arc::new(Queues {
            mean: BatchQueue::for_mean(predictor, config.batch.clone()),
            var,
            model_id: config.model_id,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepters = (0..config.accept_threads.max(1))
            .map(|i| {
                let listener = listener.try_clone()?;
                let shutdown = Arc::clone(&shutdown);
                let queues = Arc::clone(&queues);
                std::thread::Builder::new()
                    .name(format!("cbmf-accept-{i}"))
                    .spawn(move || accept_loop(&listener, &shutdown, &queues))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(PredictionServer {
            addr: local,
            shutdown,
            accepters,
            queues,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Exact statistics of the mean-path batching queue.
    pub fn mean_queue_stats(&self) -> BatchQueueStats {
        self.queues.mean.stats()
    }

    /// Exact statistics of the uncertainty-path queue, when it exists.
    pub fn var_queue_stats(&self) -> Option<BatchQueueStats> {
        self.queues.var.as_ref().map(|q| q.stats())
    }
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Each accept thread is parked in accept(); poke the listener once
        // per thread so every one observes the flag and exits.
        for _ in 0..self.accepters.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.accepters.drain(..) {
            let _ = h.join();
        }
        // Connection handlers exit when their peers hang up; the queues
        // (dropped with the last Arc) fail any stragglers with Shutdown.
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &AtomicBool, queues: &Arc<Queues>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let queues = Arc::clone(queues);
                let _ = std::thread::Builder::new()
                    .name("cbmf-conn".to_string())
                    .spawn(move || handle_connection(stream, &queues));
            }
            Err(_) if shutdown.load(Ordering::Relaxed) => return,
            Err(_) => continue,
        }
    }
}

/// Serves one connection until the peer closes or a fatal frame error.
/// Recoverable frame errors answer in-band and keep going — a malformed
/// frame never kills the thread.
fn handle_connection(mut stream: TcpStream, queues: &Queues) {
    // Nagle would hold our small response frames hostage to the next read.
    let _ = stream.set_nodelay(true);
    loop {
        match read_request(&mut stream) {
            Ok(req) => {
                SERVER_REQUESTS.inc();
                let start = Instant::now();
                let resp = dispatch(queues, &req);
                SERVER_REQUEST_NS.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Err(ProtocolError::Closed) => return,
            Err(ProtocolError::Io(_)) => return,
            Err(ProtocolError::Frame {
                code,
                detail,
                fatal,
            }) => {
                SERVER_PROTOCOL_ERRORS.inc();
                let reply = Response::Error {
                    code,
                    message: detail,
                };
                let ok = write_response(&mut stream, &reply).is_ok();
                if fatal || !ok {
                    let _ = stream.flush();
                    return;
                }
            }
        }
    }
}

fn dispatch(queues: &Queues, req: &Request) -> Response {
    if req.model_id != queues.model_id {
        return Response::Error {
            code: ErrorCode::UnknownModel,
            message: format!(
                "model id {} is not served here (serving {})",
                req.model_id, queues.model_id
            ),
        };
    }
    let queue = match req.kind {
        RequestKind::Predict => &queues.mean,
        RequestKind::PredictVar => match &queues.var {
            Some(q) => q,
            None => {
                return Response::Error {
                    code: ErrorCode::NoUncertainty,
                    message: "model artifact carries no posterior factors".to_string(),
                }
            }
        },
    };
    match queue.submit(&req.sample) {
        Ok(values) => Response::Values(values),
        Err(e) => Response::Error {
            code: match e {
                BatchError::Overloaded => ErrorCode::Overloaded,
                BatchError::Shutdown => ErrorCode::Shutdown,
                BatchError::WrongDimension { .. } => ErrorCode::WrongDimension,
                BatchError::Eval(_) => ErrorCode::Internal,
            },
            message: e.to_string(),
        },
    }
}
