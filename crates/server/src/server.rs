//! The TCP front-end: thread-per-core accept loop, one handler thread per
//! connection, all requests funneled through shared [`BatchQueue`]s.
//!
//! Two backends sit behind the same wire protocol: a single pinned
//! [`BatchPredictor`] ([`PredictionServer::bind`]), or a
//! [`ModelRegistry`] ([`PredictionServer::bind_registry`]) where the
//! request's model id selects a hot-swappable model and each coalesced
//! tile is evaluated against one coherent snapshot of it.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use cbmf_linalg::Matrix;
use cbmf_serve::{
    BatchConfig, BatchError, BatchPredictor, BatchQueue, BatchQueueStats, ModelRegistry, ServeError,
};
use cbmf_trace::{Counter, Histogram};

use crate::protocol::{
    read_request, write_response, ErrorCode, ProtocolError, Request, RequestKind, Response,
};

static SERVER_REQUESTS: Counter = Counter::new("server.requests");
static SERVER_PROTOCOL_ERRORS: Counter = Counter::new("server.protocol_errors");
static SERVER_REQUEST_NS: Histogram = Histogram::new("server.request_ns");

/// Server tuning: batching behavior, accept parallelism, served model id.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Batching knobs shared by the mean and uncertainty queues.
    pub batch: BatchConfig,
    /// Accept-loop threads; defaults to the `cbmf-parallel` worker count
    /// (thread per core, `RAYON_NUM_THREADS`-capped).
    pub accept_threads: usize,
    /// The model id this process answers for; anything else gets
    /// [`ErrorCode::UnknownModel`].
    pub model_id: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch: BatchConfig::from_env(),
            accept_threads: cbmf_parallel::max_threads(),
            model_id: 0,
        }
    }
}

struct Queues {
    mean: BatchQueue,
    var: Option<BatchQueue>,
    model_id: u32,
}

/// Per-model batching queues in registry mode, created lazily on the first
/// request for each model id. The uncertainty queue is additionally
/// deferred until the first `PredictVar`, because a hot swap can add
/// posterior factors to a model after its mean queue already exists.
struct ModelQueues {
    mean: BatchQueue,
    var: OnceLock<BatchQueue>,
}

struct RegistryBackend {
    registry: Arc<ModelRegistry>,
    queues: Mutex<BTreeMap<u32, Arc<ModelQueues>>>,
    batch: BatchConfig,
}

enum Backend {
    Single(Queues),
    Registry(RegistryBackend),
}

impl RegistryBackend {
    /// The queues for `id`, creating the mean queue on first use. The eval
    /// closures re-resolve the model from the registry once per coalesced
    /// tile, so every tile sees one coherent model and a swap takes effect
    /// at the next tile boundary.
    fn model_queues(&self, id: u32, predictor: &Arc<BatchPredictor>) -> Arc<ModelQueues> {
        let mut map = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(q) = map.get(&id) {
            return Arc::clone(q);
        }
        let in_dim = predictor.model().num_variables();
        let registry = Arc::clone(&self.registry);
        let mean = BatchQueue::with_eval(self.batch.clone(), in_dim, move |xs| {
            snapshot_model(&registry, id)?.predict_batch(xs)
        });
        let q = Arc::new(ModelQueues {
            mean,
            var: OnceLock::new(),
        });
        map.insert(id, Arc::clone(&q));
        q
    }

    /// The uncertainty queue for `id`, created on first use; reply rows are
    /// `[means[0..K], vars[0..K]]`, matching `BatchQueue::for_uncertainty`.
    fn var_queue<'q>(&self, queues: &'q ModelQueues, id: u32, in_dim: usize) -> &'q BatchQueue {
        queues.var.get_or_init(|| {
            let registry = Arc::clone(&self.registry);
            BatchQueue::with_eval(self.batch.clone(), in_dim, move |xs| {
                let (means, vars) =
                    snapshot_model(&registry, id)?.predict_batch_with_uncertainty(xs)?;
                let (n, k) = means.shape();
                let mut out = Matrix::zeros(n, 2 * k);
                for i in 0..n {
                    out.as_mut_slice()[i * 2 * k..i * 2 * k + k].copy_from_slice(means.row(i));
                    out.as_mut_slice()[i * 2 * k + k..(i + 1) * 2 * k].copy_from_slice(vars.row(i));
                }
                Ok(out)
            })
        })
    }
}

/// One coherent model snapshot per evaluated tile.
fn snapshot_model(registry: &ModelRegistry, id: u32) -> Result<Arc<BatchPredictor>, ServeError> {
    registry
        .get_by_id(id)
        .ok_or_else(|| ServeError::Invalid(format!("model id {id} left the registry")))
}

/// A running loopback/TCP prediction server over one [`BatchPredictor`].
///
/// Binding spawns the accept threads immediately; dropping the handle shuts
/// the listener down, joins the accept threads, and fails any still-queued
/// submissions with a typed `Shutdown`.
pub struct PredictionServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepters: Vec<JoinHandle<()>>,
    backend: Arc<Backend>,
}

impl std::fmt::Debug for PredictionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionServer")
            .field("addr", &self.addr)
            .field("accepters", &self.accepters.len())
            .finish_non_exhaustive()
    }
}

impl PredictionServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral loopback port) and
    /// starts serving `predictor`. A second queue for the uncertainty path
    /// is created only when the predictor carries posterior factors;
    /// without them, `PredictVar` requests answer
    /// [`ErrorCode::NoUncertainty`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/listen).
    pub fn bind(
        addr: impl ToSocketAddrs,
        predictor: Arc<BatchPredictor>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let var = predictor
            .has_uncertainty()
            .then(|| BatchQueue::for_uncertainty(Arc::clone(&predictor), config.batch.clone()))
            .transpose()
            .expect("has_uncertainty checked");
        let backend = Arc::new(Backend::Single(Queues {
            mean: BatchQueue::for_mean(predictor, config.batch.clone()),
            var,
            model_id: config.model_id,
        }));
        Self::spawn(listener, local, backend, config.accept_threads)
    }

    /// Binds `addr` and serves every model in `registry`: the request's
    /// model id selects the model, unknown ids answer
    /// [`ErrorCode::UnknownModel`], and hot swaps take effect atomically at
    /// the next coalesced tile — in-flight tiles finish on the model they
    /// started with. `config.model_id` only picks which model
    /// [`mean_queue_stats`](Self::mean_queue_stats) reports first; requests
    /// are routed by their own id.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/listen).
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let backend = Arc::new(Backend::Registry(RegistryBackend {
            registry,
            queues: Mutex::new(BTreeMap::new()),
            batch: config.batch.clone(),
        }));
        Self::spawn(listener, local, backend, config.accept_threads)
    }

    fn spawn(
        listener: TcpListener,
        local: SocketAddr,
        backend: Arc<Backend>,
        accept_threads: usize,
    ) -> std::io::Result<Self> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepters = (0..accept_threads.max(1))
            .map(|i| {
                let listener = listener.try_clone()?;
                let shutdown = Arc::clone(&shutdown);
                let backend = Arc::clone(&backend);
                std::thread::Builder::new()
                    .name(format!("cbmf-accept-{i}"))
                    .spawn(move || accept_loop(&listener, &shutdown, &backend))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(PredictionServer {
            addr: local,
            shutdown,
            accepters,
            backend,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Exact statistics of the mean-path batching queue. In registry mode
    /// the per-model mean queues are summed (element-wise over `fill`).
    pub fn mean_queue_stats(&self) -> BatchQueueStats {
        match self.backend.as_ref() {
            Backend::Single(q) => q.mean.stats(),
            Backend::Registry(rb) => {
                let map = rb.queues.lock().unwrap_or_else(|e| e.into_inner());
                merge_stats(map.values().map(|q| q.mean.stats()))
            }
        }
    }

    /// Exact statistics of the uncertainty-path queue(s): `None` when no
    /// uncertainty queue exists (yet), the per-model sum in registry mode.
    pub fn var_queue_stats(&self) -> Option<BatchQueueStats> {
        match self.backend.as_ref() {
            Backend::Single(q) => q.var.as_ref().map(|v| v.stats()),
            Backend::Registry(rb) => {
                let map = rb.queues.lock().unwrap_or_else(|e| e.into_inner());
                let stats: Vec<BatchQueueStats> = map
                    .values()
                    .filter_map(|q| q.var.get().map(|v| v.stats()))
                    .collect();
                if stats.is_empty() {
                    None
                } else {
                    Some(merge_stats(stats.into_iter()))
                }
            }
        }
    }
}

/// Element-wise sum of queue statistics across models.
fn merge_stats(stats: impl Iterator<Item = BatchQueueStats>) -> BatchQueueStats {
    let mut out = BatchQueueStats {
        submitted: 0,
        batches: 0,
        coalesced: 0,
        rejected: 0,
        fill: Vec::new(),
    };
    for s in stats {
        out.submitted += s.submitted;
        out.batches += s.batches;
        out.coalesced += s.coalesced;
        out.rejected += s.rejected;
        if s.fill.len() > out.fill.len() {
            out.fill.resize(s.fill.len(), 0);
        }
        for (o, v) in out.fill.iter_mut().zip(&s.fill) {
            *o += v;
        }
    }
    out
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Each accept thread is parked in accept(); poke the listener once
        // per thread so every one observes the flag and exits.
        for _ in 0..self.accepters.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.accepters.drain(..) {
            let _ = h.join();
        }
        // Connection handlers exit when their peers hang up; the queues
        // (dropped with the last Arc) fail any stragglers with Shutdown.
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &AtomicBool, backend: &Arc<Backend>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let backend = Arc::clone(backend);
                let _ = std::thread::Builder::new()
                    .name("cbmf-conn".to_string())
                    .spawn(move || handle_connection(stream, &backend));
            }
            Err(_) if shutdown.load(Ordering::Relaxed) => return,
            Err(_) => continue,
        }
    }
}

/// Serves one connection until the peer closes or a fatal frame error.
/// Recoverable frame errors answer in-band and keep going — a malformed
/// frame never kills the thread.
fn handle_connection(mut stream: TcpStream, backend: &Backend) {
    // Nagle would hold our small response frames hostage to the next read.
    let _ = stream.set_nodelay(true);
    loop {
        match read_request(&mut stream) {
            Ok(req) => {
                SERVER_REQUESTS.inc();
                let start = Instant::now();
                let resp = match backend {
                    Backend::Single(queues) => dispatch(queues, &req),
                    Backend::Registry(rb) => dispatch_registry(rb, &req),
                };
                SERVER_REQUEST_NS.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Err(ProtocolError::Closed) => return,
            Err(ProtocolError::Io(_)) => return,
            Err(ProtocolError::Frame {
                code,
                detail,
                fatal,
            }) => {
                SERVER_PROTOCOL_ERRORS.inc();
                let reply = Response::Error {
                    code,
                    message: detail,
                };
                let ok = write_response(&mut stream, &reply).is_ok();
                if fatal || !ok {
                    let _ = stream.flush();
                    return;
                }
            }
        }
    }
}

fn dispatch(queues: &Queues, req: &Request) -> Response {
    if req.model_id != queues.model_id {
        return Response::Error {
            code: ErrorCode::UnknownModel,
            message: format!(
                "model id {} is not served here (serving {})",
                req.model_id, queues.model_id
            ),
        };
    }
    let queue = match req.kind {
        RequestKind::Predict => &queues.mean,
        RequestKind::PredictVar => match &queues.var {
            Some(q) => q,
            None => {
                return Response::Error {
                    code: ErrorCode::NoUncertainty,
                    message: "model artifact carries no posterior factors".to_string(),
                }
            }
        },
    };
    submit(queue, &req.sample)
}

/// Registry-mode dispatch: the request's model id resolves against the
/// current registry snapshot, so a hot swap is visible to the very next
/// request while tiles already dispatched finish on their own snapshot.
fn dispatch_registry(rb: &RegistryBackend, req: &Request) -> Response {
    let Some(predictor) = rb.registry.get_by_id(req.model_id) else {
        return Response::Error {
            code: ErrorCode::UnknownModel,
            message: format!("model id {} is not in the registry", req.model_id),
        };
    };
    let queues = rb.model_queues(req.model_id, &predictor);
    match req.kind {
        RequestKind::Predict => submit(&queues.mean, &req.sample),
        RequestKind::PredictVar => {
            if !predictor.has_uncertainty() {
                return Response::Error {
                    code: ErrorCode::NoUncertainty,
                    message: "model artifact carries no posterior factors".to_string(),
                };
            }
            let in_dim = predictor.model().num_variables();
            submit(rb.var_queue(&queues, req.model_id, in_dim), &req.sample)
        }
    }
}

fn submit(queue: &BatchQueue, sample: &[f64]) -> Response {
    match queue.submit(sample) {
        Ok(values) => Response::Values(values),
        Err(e) => Response::Error {
            code: match e {
                BatchError::Overloaded => ErrorCode::Overloaded,
                BatchError::Shutdown => ErrorCode::Shutdown,
                BatchError::WrongDimension { .. } => ErrorCode::WrongDimension,
                BatchError::Eval(_) => ErrorCode::Internal,
            },
            message: e.to_string(),
        },
    }
}
