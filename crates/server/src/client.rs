//! A minimal blocking client for the wire protocol — what `loadgen`, the
//! smoke suite, and embedders drive.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_response, write_request, ErrorCode, ProtocolError, Request, RequestKind, Response,
};

/// A client-side failure, split by layer.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure on the response path.
    Protocol(ProtocolError),
    /// The server shed this request under load (its queue hit the depth
    /// bound). The connection is still healthy and nothing about the
    /// request was wrong — this is the one failure a caller should back
    /// off and retry, which [`ClientError::is_retryable`] encodes.
    Overloaded {
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with any other typed error frame.
    Server {
        /// The typed cause.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl ClientError {
    /// True when the failure is transient load shedding: same request,
    /// same connection, a later attempt may succeed. Every other variant —
    /// protocol damage, wrong dimension, unknown model — is deterministic
    /// and retrying it is wasted work.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Overloaded { .. })
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Overloaded { message } => {
                write!(f, "server overloaded (retryable): {message}")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// One blocking connection: send a request frame, wait for the response
/// frame. A client is single-in-flight by design — concurrency comes from
/// opening more clients, which is exactly what the batching queue coalesces.
#[derive(Debug)]
pub struct PredictClient {
    stream: TcpStream,
    model_id: u32,
}

impl PredictClient {
    /// Connects (with `TCP_NODELAY`) to a running [`crate::PredictionServer`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PredictClient {
            stream,
            model_id: 0,
        })
    }

    /// Targets a different model id (default 0).
    #[must_use]
    pub fn with_model_id(mut self, id: u32) -> Self {
        self.model_id = id;
        self
    }

    fn round_trip(&mut self, kind: RequestKind, sample: &[f64]) -> Result<Vec<f64>, ClientError> {
        write_request(
            &mut self.stream,
            &Request {
                kind,
                model_id: self.model_id,
                sample: sample.to_vec(),
            },
        )
        .map_err(ProtocolError::Io)?;
        match read_response(&mut self.stream)? {
            Response::Values(values) => Ok(values),
            Response::Error {
                code: ErrorCode::Overloaded,
                message,
            } => Err(ClientError::Overloaded { message }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Requests the K per-state means for one sample.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for typed in-band rejections (overload,
    /// wrong dimension, ...); [`ClientError::Protocol`] when the transport
    /// or framing breaks.
    pub fn predict(&mut self, sample: &[f64]) -> Result<Vec<f64>, ClientError> {
        self.round_trip(RequestKind::Predict, sample)
    }

    /// Requests per-state means and predictive variances; the reply is
    /// split as (`means`, `vars`), each of length K.
    ///
    /// # Errors
    ///
    /// As [`PredictClient::predict`], plus a typed
    /// [`ErrorCode::NoUncertainty`] rejection when the served artifact has
    /// no posterior factors.
    pub fn predict_with_uncertainty(
        &mut self,
        sample: &[f64],
    ) -> Result<(Vec<f64>, Vec<f64>), ClientError> {
        let mut values = self.round_trip(RequestKind::PredictVar, sample)?;
        let k = values.len() / 2;
        let vars = values.split_off(k);
        Ok((values, vars))
    }
}
