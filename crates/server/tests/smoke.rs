//! Loopback smoke suite: concurrent clients against a live server, with
//! every response compared *bitwise* against the direct
//! `BatchPredictor::predict_batch` call. Run in CI at
//! `RAYON_NUM_THREADS ∈ {1,2,4,8}` and under both `CBMF_FUSE_PREDICT`
//! settings — coalescing must be invisible in the bits everywhere.

mod common;

use std::sync::Arc;
use std::time::Duration;

use cbmf_linalg::Matrix;
use cbmf_serve::BatchConfig;
use cbmf_server::protocol::ErrorCode;
use cbmf_server::{ClientError, PredictClient, PredictionServer, ServerConfig};
use common::{gp_predictor, mean_predictor, sample, VARIABLES};

const CLIENTS: usize = 16;

fn serve_config(batch: BatchConfig) -> ServerConfig {
    ServerConfig {
        batch,
        ..ServerConfig::default()
    }
}

/// Drives `CLIENTS` concurrent single-sample clients and checks each
/// response row bitwise against the direct batch call.
fn assert_bitwise_roundtrip(batch: BatchConfig) {
    let predictor = gp_predictor();
    let xs = Matrix::from_fn(CLIENTS, VARIABLES, |i, j| sample(i)[j]);
    let direct_means = predictor.predict_batch(&xs).unwrap();
    let (direct_umeans, direct_vars) = predictor.predict_batch_with_uncertainty(&xs).unwrap();

    let server =
        PredictionServer::bind("127.0.0.1:0", Arc::clone(&predictor), serve_config(batch)).unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = PredictClient::connect(addr).unwrap();
                let mean = client.predict(&sample(i)).unwrap();
                let (umean, var) = client.predict_with_uncertainty(&sample(i)).unwrap();
                (i, mean, umean, var)
            })
        })
        .collect();
    for h in handles {
        let (i, mean, umean, var) = h.join().unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&mean),
            bits(direct_means.row(i)),
            "mean row {i} differs from direct predict_batch"
        );
        assert_eq!(
            bits(&umean),
            bits(direct_umeans.row(i)),
            "uncertainty mean row {i} differs"
        );
        assert_eq!(
            bits(&var),
            bits(direct_vars.row(i)),
            "variance row {i} differs"
        );
    }
    drop(server);
}

#[test]
fn responses_bitwise_equal_direct_predict_with_coalescing() {
    // A wide-open window so concurrent requests genuinely share tiles.
    assert_bitwise_roundtrip(
        BatchConfig::from_env()
            .with_max_batch(8)
            .with_deadline(Duration::from_millis(4)),
    );
}

#[test]
fn responses_bitwise_equal_direct_predict_without_coalescing() {
    // max_batch = 1: every request rides alone; bits must not change.
    assert_bitwise_roundtrip(BatchConfig::from_env().with_max_batch(1));
}

#[test]
fn responses_bitwise_equal_direct_predict_zero_deadline() {
    // Zero deadline: the worker drains whatever is queued immediately, so
    // tiles form only from natural backlog.
    assert_bitwise_roundtrip(
        BatchConfig::from_env()
            .with_max_batch(64)
            .with_deadline(Duration::ZERO),
    );
}

#[test]
fn coalescing_actually_happens_under_concurrency() {
    let server = PredictionServer::bind(
        "127.0.0.1:0",
        gp_predictor(),
        serve_config(
            BatchConfig::from_env()
                .with_max_batch(8)
                .with_deadline(Duration::from_millis(10)),
        ),
    )
    .unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = PredictClient::connect(addr).unwrap();
                for _ in 0..4 {
                    client.predict(&sample(i)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.mean_queue_stats();
    assert_eq!(stats.submitted, (CLIENTS * 4) as u64);
    assert!(
        stats.coalesced > 0,
        "16 clients × 4 requests inside a 10ms window never shared a tile: {stats:?}"
    );
    assert_eq!(
        stats
            .fill
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum::<u64>(),
        stats.submitted,
        "fill histogram accounts for every sample"
    );
}

#[test]
fn mean_only_server_rejects_uncertainty_with_typed_code() {
    let server = PredictionServer::bind(
        "127.0.0.1:0",
        mean_predictor(),
        serve_config(BatchConfig::from_env()),
    )
    .unwrap();
    let mut client = PredictClient::connect(server.local_addr()).unwrap();
    // The mean path still works...
    client.predict(&sample(0)).unwrap();
    // ...and the uncertainty path is a typed in-band error, not a hangup.
    match client.predict_with_uncertainty(&sample(0)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NoUncertainty),
        other => panic!("expected NoUncertainty, got {other:?}"),
    }
    // The connection survived the rejection.
    client.predict(&sample(1)).unwrap();
}

#[test]
fn wrong_model_id_and_wrong_dimension_are_typed_errors() {
    let server = PredictionServer::bind(
        "127.0.0.1:0",
        gp_predictor(),
        serve_config(BatchConfig::from_env()),
    )
    .unwrap();
    let mut client = PredictClient::connect(server.local_addr())
        .unwrap()
        .with_model_id(99);
    match client.predict(&sample(0)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    let mut client = PredictClient::connect(server.local_addr()).unwrap();
    match client.predict(&[1.0, 2.0]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::WrongDimension),
        other => panic!("expected WrongDimension, got {other:?}"),
    }
    // Both connections keep serving after their rejections.
    client.predict(&sample(2)).unwrap();
}

#[test]
fn depth_bound_returns_typed_overloaded() {
    // Tiny queue + a slow-ish artificial load: with depth 1 and many
    // concurrent callers, at least one must bounce with Overloaded while
    // the rest succeed.
    let server = PredictionServer::bind(
        "127.0.0.1:0",
        gp_predictor(),
        serve_config(
            BatchConfig::from_env()
                .with_max_batch(1)
                .with_deadline(Duration::ZERO)
                .with_queue_depth(1),
        ),
    )
    .unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = PredictClient::connect(addr).unwrap();
                let mut rejected = 0u64;
                for _ in 0..8 {
                    match client.predict_with_uncertainty(&sample(i)) {
                        Ok(_) => {}
                        // Load shedding surfaces as the dedicated retryable
                        // variant, not a generic server error.
                        Err(e @ ClientError::Overloaded { .. }) => {
                            assert!(e.is_retryable(), "Overloaded must be retryable");
                            rejected += 1;
                        }
                        Err(other) => {
                            assert!(!other.is_retryable(), "only Overloaded is retryable");
                            panic!("unexpected failure: {other:?}");
                        }
                    }
                }
                rejected
            })
        })
        .collect();
    let rejected: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let stats = server.var_queue_stats().unwrap();
    assert_eq!(stats.rejected, rejected);
    assert!(
        rejected > 0,
        "32 hot clients against a depth-1 queue never tripped backpressure"
    );
    assert!(
        stats.submitted > 0,
        "backpressure must shed load, not stop service"
    );
}

#[test]
fn sequential_requests_on_one_connection_all_answer() {
    let server = PredictionServer::bind(
        "127.0.0.1:0",
        gp_predictor(),
        serve_config(BatchConfig::from_env()),
    )
    .unwrap();
    let predictor = gp_predictor();
    let mut client = PredictClient::connect(server.local_addr()).unwrap();
    for i in 0..20 {
        let got = client.predict(&sample(i)).unwrap();
        let xs = Matrix::from_fn(1, VARIABLES, |_, j| sample(i)[j]);
        let want = predictor.predict_batch(&xs).unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.row(0).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

/// Registry mode: requests route by their model id, unknown ids stay typed,
/// and a hot swap changes what an existing id serves — bitwise equal to the
/// direct predictor call on whichever model is current.
#[test]
fn registry_server_routes_by_model_id_and_hot_swaps() {
    use cbmf_serve::{BatchPredictor, ModelArtifact, ModelRegistry};

    let base = common::toy_model();
    let shifted = {
        let m = common::toy_model();
        let intercepts: Vec<f64> = m.intercepts().iter().map(|v| v + 10.0).collect();
        cbmf::PerStateModel::new(
            m.basis_spec(),
            m.num_variables(),
            m.support().to_vec(),
            m.coefficients().clone(),
            intercepts,
        )
        .unwrap()
    };
    let xs = Matrix::from_fn(1, VARIABLES, |_, j| sample(0)[j]);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    let direct_base = BatchPredictor::new(base.clone())
        .predict_batch(&xs)
        .unwrap();
    let direct_shifted = BatchPredictor::new(shifted.clone())
        .predict_batch(&xs)
        .unwrap();

    let registry = Arc::new(ModelRegistry::new());
    let id_base = registry
        .insert("base", &ModelArtifact::from_model(base))
        .unwrap();
    let id_shifted = registry
        .insert("shifted", &ModelArtifact::from_model(shifted.clone()))
        .unwrap();
    let server = PredictionServer::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        serve_config(BatchConfig::from_env()),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut on_base = PredictClient::connect(addr).unwrap().with_model_id(id_base);
    let mut on_shifted = PredictClient::connect(addr)
        .unwrap()
        .with_model_id(id_shifted);
    assert_eq!(
        bits(&on_base.predict(&sample(0)).unwrap()),
        bits(direct_base.row(0))
    );
    assert_eq!(
        bits(&on_shifted.predict(&sample(0)).unwrap()),
        bits(direct_shifted.row(0))
    );

    // An id outside the registry is a typed, non-retryable error.
    let mut unknown = PredictClient::connect(addr).unwrap().with_model_id(99);
    match unknown.predict(&sample(0)) {
        Err(
            e @ ClientError::Server {
                code: ErrorCode::UnknownModel,
                ..
            },
        ) => assert!(!e.is_retryable()),
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    // Hot swap "base" to the shifted model: the same id and the same
    // connection now serve the new bits.
    registry
        .insert("base", &ModelArtifact::from_model(shifted))
        .unwrap();
    assert_eq!(
        bits(&on_base.predict(&sample(0)).unwrap()),
        bits(direct_shifted.row(0)),
        "hot swap must be visible to the next request on an open connection"
    );

    // The mean-path registry stats cover both models' queues.
    assert!(server.mean_queue_stats().submitted >= 3);
}
