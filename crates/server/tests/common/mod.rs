//! Shared fixtures: a small deterministic model, with and without
//! synthetic posterior factors, served over loopback.
//!
//! Each test binary uses the subset it needs.
#![allow(dead_code)]

use std::sync::Arc;

use cbmf::{BasisSpec, PerStateModel, PosteriorPredictive, PredictiveParts};
use cbmf_linalg::Matrix;
use cbmf_serve::{BatchPredictor, ModelArtifact};

pub const STATES: usize = 4;
pub const VARIABLES: usize = 6;
pub const PER_STATE: usize = 5;

/// A deterministic mean-path model: full support, formula coefficients.
pub fn toy_model() -> PerStateModel {
    let support: Vec<usize> = (0..VARIABLES).collect();
    let coeffs = Matrix::from_fn(STATES, support.len(), |k, j| {
        ((k * 7 + j * 3) as f64 * 0.23).sin()
    });
    let intercepts: Vec<f64> = (0..STATES).map(|k| k as f64 * 0.5 - 1.0).collect();
    PerStateModel::new(BasisSpec::Linear, VARIABLES, support, coeffs, intercepts).unwrap()
}

/// Synthetic posterior factors shaped like a real fit (the values are
/// arbitrary but deterministic — the suites only compare server output
/// against the direct predictor call, bit for bit).
pub fn toy_predictive() -> PosteriorPredictive {
    let m = VARIABLES;
    let total = STATES * PER_STATE;
    let chol_l = Matrix::from_fn(total, total, |i, j| {
        if i == j {
            1.0 + 0.05 * i as f64
        } else if j < i {
            0.01 * ((i * 3 + j) % 5) as f64
        } else {
            0.0
        }
    });
    let parts = PredictiveParts {
        chol_l,
        chol_jitter: 0.0,
        ciy: (0..total).map(|i| ((i as f64) * 0.37).cos()).collect(),
        bases: (0..STATES)
            .map(|k| {
                Matrix::from_fn(PER_STATE, m, |n, j| {
                    ((k + 2 * n + 3 * j) as f64 * 0.19).sin()
                })
            })
            .collect(),
        basis_means: (0..STATES)
            .map(|k| (0..m).map(|j| 0.05 * (k as f64 - j as f64)).collect())
            .collect(),
        y_means: (0..STATES).map(|k| 0.25 * k as f64).collect(),
        lambda: (0..m).map(|j| 0.5 + 0.1 * j as f64).collect(),
        r: Matrix::from_fn(STATES, STATES, |a, b| if a == b { 1.0 } else { 0.4 }),
        sigma0: 0.3,
        basis_spec: BasisSpec::Linear,
    };
    PosteriorPredictive::from_parts(parts).unwrap()
}

/// A predictor with both the mean and the uncertainty path.
pub fn gp_predictor() -> Arc<BatchPredictor> {
    let artifact = ModelArtifact::from_model(toy_model()).with_predictive(&toy_predictive());
    Arc::new(BatchPredictor::from_artifact(&artifact).unwrap())
}

/// A predictor with only the mean path.
pub fn mean_predictor() -> Arc<BatchPredictor> {
    Arc::new(BatchPredictor::new(toy_model()))
}

/// Deterministic pseudo-random sample grid: row `i` of the suite's shared
/// input set.
pub fn sample(i: usize) -> Vec<f64> {
    (0..VARIABLES)
        .map(|j| ((i * 31 + j * 17) as f64 * 0.113).sin() * 2.0)
        .collect()
}
