//! Protocol robustness: hostile bytes must never panic a decoder or kill
//! the server. Property tests cover truncations, oversized length
//! prefixes, and bit flips; live-socket tests pin the recover-vs-close
//! contract and the `server.protocol_errors` counter.

mod common;

use std::io::{Cursor, Read as _, Write as _};
use std::net::{Shutdown, TcpStream};
use std::sync::Mutex;

use cbmf_serve::BatchConfig;
use cbmf_server::protocol::{
    encode_request, read_request, read_response, write_request, ErrorCode, ProtocolError, Request,
    RequestKind, Response, MAX_FRAME_BYTES,
};
use cbmf_server::{PredictionServer, ServerConfig};
use common::{mean_predictor, sample};
use proptest::collection::vec;
use proptest::prelude::*;

fn request_strategy() -> impl Strategy<Value = Request> {
    (0u32..3, 0u32..100, vec(0u64..u64::MAX, 0..12)).prop_map(|(kind, model_id, bits)| Request {
        kind: if kind == 0 {
            RequestKind::Predict
        } else {
            RequestKind::PredictVar
        },
        model_id,
        sample: bits.into_iter().map(f64::from_bits).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the decoder returns Ok or a typed error — it never
    /// panics and never hands back a partially-parsed frame.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(0u64..256, 0..2048)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = read_request(&mut Cursor::new(&bytes));
        let _ = read_response(&mut Cursor::new(&bytes));
    }

    /// Every strict truncation of a valid frame is an error: a clean Closed
    /// at zero bytes, a typed Truncated (or short-body error) otherwise.
    #[test]
    fn truncations_are_typed_errors(req in request_strategy(), cut in 0u64..10_000) {
        let frame = encode_request(&req);
        let cut = (cut as usize) % frame.len().max(1);
        match read_request(&mut Cursor::new(&frame[..cut])) {
            Err(ProtocolError::Closed) => prop_assert_eq!(cut, 0),
            Err(ProtocolError::Frame { code, .. }) => prop_assert!(
                matches!(code, ErrorCode::Truncated | ErrorCode::Malformed),
                "cut {} of {} gave {:?}", cut, frame.len(), code
            ),
            Err(ProtocolError::Io(e)) => prop_assert!(false, "io error {e}"),
            Ok(_) => prop_assert!(false, "truncated frame decoded"),
        }
    }

    /// A single flipped bit anywhere in the body is always caught: the
    /// FNV-1a update is injective in each byte, so any one-byte change
    /// (payload or checksum) breaks verification — or earlier, the length
    /// and structure checks.
    #[test]
    fn single_bit_flips_in_body_are_rejected(
        req in request_strategy(),
        pos in 0u64..10_000,
        bit in 0u32..8,
    ) {
        let mut frame = encode_request(&req);
        let body_len = frame.len() - 4;
        let pos = 4 + (pos as usize) % body_len;
        frame[pos] ^= 1 << bit;
        prop_assert!(
            read_request(&mut Cursor::new(&frame)).is_err(),
            "flip at byte {} slipped through", pos
        );
    }

    /// Requests round-trip bit-exactly through encode/decode, including
    /// NaN payloads and empty samples.
    #[test]
    fn requests_round_trip_bit_exactly(req in request_strategy()) {
        let got = read_request(&mut Cursor::new(encode_request(&req))).unwrap();
        prop_assert_eq!(got.kind, req.kind);
        prop_assert_eq!(got.model_id, req.model_id);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(bits(&got.sample), bits(&req.sample));
    }
}

/// The live-socket tests below assert on the process-global
/// `server.protocol_errors` counter, so they serialize on one lock.
fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn protocol_errors() -> u64 {
    cbmf_trace::snapshot()
        .counters
        .get("server.protocol_errors")
        .copied()
        .unwrap_or(0)
}

fn spawn_server() -> PredictionServer {
    PredictionServer::bind(
        "127.0.0.1:0",
        mean_predictor(),
        ServerConfig {
            batch: BatchConfig::from_env().with_max_batch(1),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Reads frames until EOF; returns the decoded responses.
fn drain_responses(stream: &mut TcpStream) -> Vec<Response> {
    let mut out = Vec::new();
    loop {
        match read_response(stream) {
            Ok(resp) => out.push(resp),
            Err(_) => return out,
        }
    }
}

#[test]
fn bad_checksum_answers_in_band_and_connection_survives() {
    let _l = counter_lock();
    cbmf_trace::set_enabled(true);
    let before = protocol_errors();
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut frame = encode_request(&Request {
        kind: RequestKind::Predict,
        model_id: 0,
        sample: sample(0),
    });
    let last = frame.len() - 1; // corrupt the checksum itself
    frame[last] ^= 0xff;
    stream.write_all(&frame).unwrap();
    match read_response(&mut stream).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadChecksum),
        other => panic!("expected BadChecksum error frame, got {other:?}"),
    }
    // Same connection, valid frame: still served.
    write_request(
        &mut stream,
        &Request {
            kind: RequestKind::Predict,
            model_id: 0,
            sample: sample(1),
        },
    )
    .unwrap();
    match read_response(&mut stream).unwrap() {
        Response::Values(v) => assert_eq!(v.len(), common::STATES),
        other => panic!("expected values after recovery, got {other:?}"),
    }
    assert!(protocol_errors() > before, "protocol_errors not counted");
    cbmf_trace::clear_enabled_override();
}

#[test]
fn oversized_prefix_gets_error_frame_then_clean_close() {
    let _l = counter_lock();
    cbmf_trace::set_enabled(true);
    let before = protocol_errors();
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
        .unwrap();
    let responses = drain_responses(&mut stream);
    assert!(
        matches!(
            responses.first(),
            Some(Response::Error {
                code: ErrorCode::Oversized,
                ..
            })
        ),
        "expected a typed Oversized frame before the close, got {responses:?}"
    );
    // The stream is now at EOF — a clean close, not a reset mid-frame.
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
    assert!(protocol_errors() > before);
    // The listener is unaffected: a fresh connection still serves.
    let mut client = cbmf_server::PredictClient::connect(server.local_addr()).unwrap();
    client.predict(&sample(2)).unwrap();
    cbmf_trace::clear_enabled_override();
}

#[test]
fn truncated_frame_with_half_closed_writer_gets_typed_error() {
    let _l = counter_lock();
    cbmf_trace::set_enabled(true);
    let before = protocol_errors();
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Claim 100 body bytes, deliver 10, then half-close: the server sees a
    // definite truncation and must answer it before closing.
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    stream.write_all(&[0u8; 10]).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let responses = drain_responses(&mut stream);
    assert!(
        matches!(
            responses.first(),
            Some(Response::Error {
                code: ErrorCode::Truncated,
                ..
            })
        ),
        "expected a typed Truncated frame, got {responses:?}"
    );
    assert!(protocol_errors() > before);
    cbmf_trace::clear_enabled_override();
}

#[test]
fn mid_frame_disconnect_leaves_server_healthy() {
    let _l = counter_lock();
    let server = spawn_server();
    // Ten connections that die mid-frame without so much as a FIN ordering
    // guarantee; none may take the server down.
    for i in 0..10 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let frame = encode_request(&Request {
            kind: RequestKind::Predict,
            model_id: 0,
            sample: sample(i),
        });
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(stream); // hard disconnect mid-frame
    }
    // Server still accepts and serves.
    let mut client = cbmf_server::PredictClient::connect(server.local_addr()).unwrap();
    client.predict(&sample(11)).unwrap();
}

#[test]
fn garbage_storm_never_kills_the_listener() {
    let _l = counter_lock();
    let server = spawn_server();
    for seed in 0u64..20 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Deterministic junk: an xorshift stream of 1..=256 bytes.
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let len = 1 + (seed as usize * 13) % 256;
        let junk: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let _ = stream.write_all(&junk);
        let _ = stream.shutdown(Shutdown::Write);
        let _ = drain_responses(&mut stream); // whatever came back, no hang
    }
    let mut client = cbmf_server::PredictClient::connect(server.local_addr()).unwrap();
    client.predict(&sample(3)).unwrap();
}
