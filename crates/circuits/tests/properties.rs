//! Property-based tests on the circuit substrate invariants.

use cbmf_circuits::{AcSolver, Lna, Mixer, Netlist, Testbench};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Passive reciprocal networks: the transfer impedance from node a to
    /// node b equals the one from b to a (reciprocity).
    #[test]
    fn passive_network_is_reciprocal(
        r1 in 10.0f64..1_000.0,
        r2 in 10.0f64..1_000.0,
        r3 in 10.0f64..1_000.0,
        c1 in 1e-13f64..1e-11,
        freq in 1e6f64..1e10,
    ) {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        let b = nl.add_node();
        nl.add_resistor(a, nl.ground(), r1).expect("valid");
        nl.add_resistor(b, nl.ground(), r2).expect("valid");
        nl.add_resistor(a, b, r3).expect("valid");
        nl.add_capacitor(a, b, c1).expect("valid");
        let fac = AcSolver::new(&nl).expect("nodes").factor(freq).expect("nonsingular");
        let z_ab = fac.solve_injection(a).expect("solve").voltage(b);
        let z_ba = fac.solve_injection(b).expect("solve").voltage(a);
        prop_assert!((z_ab - z_ba).abs() < 1e-9 * z_ab.abs().max(1e-12));
    }

    /// Linear scaling: doubling the excitation current doubles every node
    /// voltage.
    #[test]
    fn mna_is_linear_in_excitation(
        r in 50.0f64..500.0,
        amps in 1e-4f64..1e-1,
        freq in 1e6f64..1e9,
    ) {
        let build = |i: f64| {
            let mut nl = Netlist::new();
            let n = nl.add_node();
            nl.add_resistor(n, nl.ground(), r).expect("valid");
            nl.add_capacitor(n, nl.ground(), 1e-12).expect("valid");
            nl.add_current_source(nl.ground(), n, i).expect("valid");
            let v = AcSolver::new(&nl).expect("nodes").solve(freq).expect("solve").voltage(n);
            v
        };
        let v1 = build(amps);
        let v2 = build(2.0 * amps);
        prop_assert!((v2 - v1.scale(2.0)).abs() < 1e-9 * v2.abs());
    }

    /// LNA outputs are finite and smooth for in-range Gaussian samples, and
    /// perturbing one coordinate slightly moves the output slightly.
    #[test]
    fn lna_outputs_finite_and_locally_smooth(
        state in 0usize..32,
        seed in 0u64..500,
        coord in 0usize..1264,
    ) {
        let lna = Lna::new();
        let mut rng = cbmf_stats::seeded_rng(seed);
        let x = lna.variation_model().sample(&mut rng);
        let base = lna.simulate(state, &x).expect("simulate");
        prop_assert!(base.iter().all(|v| v.is_finite()));
        let mut x2 = x.clone();
        x2[coord] += 1e-4;
        let moved = lna.simulate(state, &x2).expect("simulate");
        for (b, m) in base.iter().zip(&moved) {
            prop_assert!((b - m).abs() < 0.05, "jump too large: {b} -> {m}");
        }
    }

    /// Mixer state loads are monotone in the knob index for both resistors.
    #[test]
    fn mixer_loads_monotone(state in 0usize..31) {
        let mixer = Mixer::new();
        let (a0, b0) = mixer.state_loads(state);
        let (a1, b1) = mixer.state_loads(state + 1);
        prop_assert!(a1 > a0 && b1 > b0);
    }

    /// The LNA's bias knob is strictly monotone in state index.
    #[test]
    fn lna_bias_monotone(state in 0usize..31) {
        let lna = Lna::new();
        prop_assert!(lna.state_bias(state + 1) > lna.state_bias(state));
    }

    /// Simulations are exactly deterministic: same (state, x) twice gives a
    /// bit-identical result.
    #[test]
    fn simulation_determinism(state in 0usize..32, seed in 0u64..200) {
        let mixer = Mixer::new();
        let mut rng = cbmf_stats::seeded_rng(seed);
        let x = mixer.variation_model().sample(&mut rng);
        let a = mixer.simulate(state, &x).expect("simulate");
        let b = mixer.simulate(state, &x).expect("simulate");
        for (p, q) in a.iter().zip(&b) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}
