use cbmf_linalg::{CLu, CMatrix, Complex64};

use crate::error::CircuitError;
use crate::netlist::{Element, Netlist, NodeId};

/// Frequency-domain nodal-analysis solver.
///
/// Assembles the complex node-admittance matrix of a [`Netlist`] at a given
/// frequency (ground eliminated), LU-factors it once, and solves for the node
/// voltages under the netlist's current-source excitation or under arbitrary
/// injected currents — the latter is what the noise analysis uses, one
/// right-hand side per noise source, reusing the single factorization.
///
/// # Examples
///
/// Voltage divider: two 1 kΩ resistors driven by a 1 mA Norton source give
/// 0.5 V at the midpoint only if the source sees both; here the source drives
/// the top node directly, so `V(top) = I · (R1 + R2) = 2 V` is observed at
/// the top and `1 V` at the midpoint:
///
/// ```
/// use cbmf_circuits::{AcSolver, Netlist};
///
/// # fn main() -> Result<(), cbmf_circuits::CircuitError> {
/// let mut nl = Netlist::new();
/// let top = nl.add_node();
/// let mid = nl.add_node();
/// nl.add_resistor(top, mid, 1_000.0)?;
/// nl.add_resistor(mid, nl.ground(), 1_000.0)?;
/// nl.add_current_source(nl.ground(), top, 1e-3)?;
/// let sol = AcSolver::new(&nl)?.solve(1.0)?;
/// assert!((sol.voltage(top).re - 2.0).abs() < 1e-9);
/// assert!((sol.voltage(mid).re - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AcSolver<'a> {
    netlist: &'a Netlist,
}

impl<'a> AcSolver<'a> {
    /// Creates a solver for the given netlist.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BadInput`] if the netlist has no non-ground
    /// nodes.
    pub fn new(netlist: &'a Netlist) -> Result<Self, CircuitError> {
        if netlist.num_nodes() < 2 {
            return Err(CircuitError::BadInput {
                what: "netlist has no nodes besides ground".to_string(),
            });
        }
        Ok(AcSolver { netlist })
    }

    /// Assembles and factors the admittance matrix at `freq_hz`, returning a
    /// reusable factored system.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BadInput`] if `freq_hz` is not positive/finite.
    /// * [`CircuitError::SolveFailed`] if the matrix is singular (e.g. a
    ///   node with no DC path and no capacitive path anywhere).
    pub fn factor(&self, freq_hz: f64) -> Result<FactoredAc, CircuitError> {
        if !(freq_hz.is_finite() && freq_hz > 0.0) {
            return Err(CircuitError::BadInput {
                what: format!("analysis frequency must be positive, got {freq_hz}"),
            });
        }
        let n = self.netlist.num_nodes() - 1; // ground eliminated
        let omega = std::f64::consts::TAU * freq_hz;
        let mut y = CMatrix::zeros(n, n);
        let mut i_src = vec![Complex64::ZERO; n];

        // Stamp a two-terminal admittance between nodes a and b.
        let stamp_admittance = |y: &mut CMatrix, a: NodeId, b: NodeId, g: Complex64| {
            let (ia, ib) = (a.index(), b.index());
            if ia > 0 {
                y.stamp(ia - 1, ia - 1, g);
            }
            if ib > 0 {
                y.stamp(ib - 1, ib - 1, g);
            }
            if ia > 0 && ib > 0 {
                y.stamp(ia - 1, ib - 1, -g);
                y.stamp(ib - 1, ia - 1, -g);
            }
        };

        for el in self.netlist.elements() {
            match *el {
                Element::Resistor { a, b, ohms } => {
                    stamp_admittance(&mut y, a, b, Complex64::from_re(1.0 / ohms));
                }
                Element::Capacitor { a, b, farads } => {
                    stamp_admittance(&mut y, a, b, Complex64::new(0.0, omega * farads));
                }
                Element::Inductor { a, b, henries } => {
                    // Y = 1/(jωL) = -j/(ωL)
                    stamp_admittance(&mut y, a, b, Complex64::new(0.0, -1.0 / (omega * henries)));
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                } => {
                    // Current gm·(Vcp − Vcn) flows out of out_p into out_n.
                    let g = Complex64::from_re(gm);
                    for (out, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                        if out.index() == 0 {
                            continue;
                        }
                        let row = out.index() - 1;
                        if ctrl_p.index() > 0 {
                            y.stamp(row, ctrl_p.index() - 1, g.scale(sign));
                        }
                        if ctrl_n.index() > 0 {
                            y.stamp(row, ctrl_n.index() - 1, g.scale(-sign));
                        }
                    }
                }
                Element::CurrentSource { from, to, amps } => {
                    // Current leaves `from` and enters `to`.
                    if from.index() > 0 {
                        i_src[from.index() - 1] -= Complex64::from_re(amps);
                    }
                    if to.index() > 0 {
                        i_src[to.index() - 1] += Complex64::from_re(amps);
                    }
                }
            }
        }

        let lu = CLu::new(&y)?;
        Ok(FactoredAc {
            lu,
            i_src,
            num_nodes: self.netlist.num_nodes(),
        })
    }

    /// Convenience: factor at `freq_hz` and solve with the netlist's own
    /// current sources as excitation.
    ///
    /// # Errors
    ///
    /// Same as [`AcSolver::factor`].
    pub fn solve(&self, freq_hz: f64) -> Result<AcSolution, CircuitError> {
        let fac = self.factor(freq_hz)?;
        fac.solve_sources()
    }
}

/// A factored MNA system at one frequency, ready to solve multiple
/// right-hand sides.
#[derive(Debug)]
pub struct FactoredAc {
    lu: CLu,
    i_src: Vec<Complex64>,
    num_nodes: usize,
}

impl FactoredAc {
    /// Solves with the netlist's own current sources.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SolveFailed`] on numerical failure.
    pub fn solve_sources(&self) -> Result<AcSolution, CircuitError> {
        let v = self.lu.solve(&self.i_src)?;
        Ok(AcSolution {
            voltages: v,
            num_nodes: self.num_nodes,
        })
    }

    /// Solves with a unit current injected from ground into `into` (all
    /// netlist sources switched off) — the transfer function a noise
    /// current at that node sees.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BadInput`] if `into` is ground or unknown.
    /// * [`CircuitError::SolveFailed`] on numerical failure.
    pub fn solve_injection(&self, into: NodeId) -> Result<AcSolution, CircuitError> {
        self.solve_injection_pair(None, into)
    }

    /// Solves with a unit current flowing from `out_of` into `into`
    /// (a differential noise-current injection). `None` means ground.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BadInput`] if a referenced node is unknown or the
    ///   two terminals are identical.
    /// * [`CircuitError::SolveFailed`] on numerical failure.
    pub fn solve_injection_pair(
        &self,
        out_of: Option<NodeId>,
        into: NodeId,
    ) -> Result<AcSolution, CircuitError> {
        let n = self.num_nodes - 1;
        let check = |node: NodeId| -> Result<(), CircuitError> {
            if node.index() >= self.num_nodes {
                return Err(CircuitError::UnknownNode {
                    node: node.index(),
                    num_nodes: self.num_nodes,
                });
            }
            Ok(())
        };
        check(into)?;
        if let Some(src) = out_of {
            check(src)?;
            if src == into {
                return Err(CircuitError::BadInput {
                    what: "injection terminals must differ".to_string(),
                });
            }
        }
        if into.is_ground() && out_of.is_none_or(|s| s.is_ground()) {
            return Err(CircuitError::BadInput {
                what: "cannot inject from ground into ground".to_string(),
            });
        }
        let mut rhs = vec![Complex64::ZERO; n];
        if into.index() > 0 {
            rhs[into.index() - 1] = Complex64::ONE;
        }
        if let Some(src) = out_of {
            if src.index() > 0 {
                rhs[src.index() - 1] -= Complex64::ONE;
            }
        }
        let v = self.lu.solve(&rhs)?;
        Ok(AcSolution {
            voltages: v,
            num_nodes: self.num_nodes,
        })
    }
}

/// Node voltages from one AC solve.
#[derive(Debug, Clone)]
pub struct AcSolution {
    voltages: Vec<Complex64>,
    num_nodes: usize,
}

impl AcSolution {
    /// Complex voltage at `node` (ground reads exactly zero).
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved netlist.
    pub fn voltage(&self, node: NodeId) -> Complex64 {
        assert!(
            node.index() < self.num_nodes,
            "node {} not in solved netlist",
            node.index()
        );
        if node.index() == 0 {
            Complex64::ZERO
        } else {
            self.voltages[node.index() - 1]
        }
    }

    /// Differential voltage `V(a) − V(b)`.
    ///
    /// # Panics
    ///
    /// Panics if either node does not belong to the solved netlist.
    pub fn differential(&self, a: NodeId, b: NodeId) -> Complex64 {
        self.voltage(a) - self.voltage(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// |Z| of a parallel RLC at resonance equals R.
    #[test]
    fn parallel_rlc_resonance() {
        let r = 500.0;
        let l = 2e-9;
        let f0 = 2.4e9;
        // C chosen for resonance at f0: C = 1/(ω² L)
        let w0 = std::f64::consts::TAU * f0;
        let c = 1.0 / (w0 * w0 * l);

        let mut nl = Netlist::new();
        let out = nl.add_node();
        nl.add_resistor(out, nl.ground(), r).unwrap();
        nl.add_inductor(out, nl.ground(), l).unwrap();
        nl.add_capacitor(out, nl.ground(), c).unwrap();
        nl.add_current_source(nl.ground(), out, 1.0).unwrap();

        let solver = AcSolver::new(&nl).unwrap();
        let at_res = solver.solve(f0).unwrap().voltage(out).abs();
        assert!((at_res - r).abs() / r < 1e-9, "(|Z| = {at_res})");
        // Off resonance the impedance must drop.
        let off = solver.solve(f0 * 1.5).unwrap().voltage(out).abs();
        assert!(off < at_res * 0.5);
    }

    /// RC low-pass: magnitude at the pole frequency is 1/sqrt(2).
    #[test]
    fn rc_low_pass_pole() {
        let r = 1_000.0;
        let c = 1e-12;
        let fpole = 1.0 / (std::f64::consts::TAU * r * c);

        let mut nl = Netlist::new();
        let out = nl.add_node();
        nl.add_resistor(out, nl.ground(), r).unwrap();
        nl.add_capacitor(out, nl.ground(), c).unwrap();
        nl.add_current_source(nl.ground(), out, 1.0 / r).unwrap();

        let solver = AcSolver::new(&nl).unwrap();
        let vlow = solver.solve(fpole / 1e3).unwrap().voltage(out).abs();
        let vpole = solver.solve(fpole).unwrap().voltage(out).abs();
        assert!((vlow - 1.0).abs() < 1e-5);
        assert!((vpole - 1.0 / 2.0_f64.sqrt()).abs() < 1e-6);
    }

    /// A VCCS driving a load resistor forms an amplifier with gain gm·RL.
    #[test]
    fn vccs_common_source_gain() {
        let gm = 0.02; // 20 mS
        let rl = 250.0;
        let rs = 50.0;

        let mut nl = Netlist::new();
        let gate = nl.add_node();
        let drain = nl.add_node();
        // Norton input: 1 A through Rs gives 50 V open-circuit... use small.
        nl.add_resistor(gate, nl.ground(), rs).unwrap();
        nl.add_current_source(nl.ground(), gate, 1.0 / rs).unwrap(); // 1 V at gate
        nl.add_resistor(drain, nl.ground(), rl).unwrap();
        // Drain current gm·Vgs flows from drain to ground (inverting stage):
        nl.add_vccs(drain, nl.ground(), gate, nl.ground(), gm)
            .unwrap();

        let sol = AcSolver::new(&nl).unwrap().solve(1e6).unwrap();
        let vgate = sol.voltage(gate);
        let vdrain = sol.voltage(drain);
        assert!((vgate.re - 1.0).abs() < 1e-9);
        // V(drain) = −gm·RL·V(gate)
        assert!((vdrain.re + gm * rl).abs() < 1e-9, "vdrain = {vdrain}");
    }

    #[test]
    fn injection_reuses_factorization() {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        let b = nl.add_node();
        nl.add_resistor(a, nl.ground(), 100.0).unwrap();
        nl.add_resistor(a, b, 100.0).unwrap();
        nl.add_resistor(b, nl.ground(), 100.0).unwrap();

        let solver = AcSolver::new(&nl).unwrap();
        let fac = solver.factor(1e6).unwrap();
        // Inject 1 A into node a: V(a) = R_eff where R_eff = 100 ∥ 200.
        let sol = fac.solve_injection(a).unwrap();
        let reff = 100.0 * 200.0 / 300.0;
        assert!((sol.voltage(a).re - reff).abs() < 1e-9);
        // Differential injection from b into a.
        let sol2 = fac.solve_injection_pair(Some(b), a).unwrap();
        let diff = sol2.differential(a, b);
        assert!(diff.re > 0.0);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        let _floating = nl.add_node();
        nl.add_resistor(a, nl.ground(), 1.0).unwrap();
        let solver = AcSolver::new(&nl).unwrap();
        assert!(matches!(
            solver.solve(1e6),
            Err(CircuitError::SolveFailed(_))
        ));
    }

    #[test]
    fn bad_inputs_rejected() {
        let nl = Netlist::new();
        assert!(AcSolver::new(&nl).is_err()); // ground only

        let mut nl = Netlist::new();
        let a = nl.add_node();
        nl.add_resistor(a, nl.ground(), 1.0).unwrap();
        let solver = AcSolver::new(&nl).unwrap();
        assert!(solver.solve(0.0).is_err());
        assert!(solver.solve(-1.0).is_err());
        assert!(solver.solve(f64::NAN).is_err());

        let fac = solver.factor(1e6).unwrap();
        assert!(fac.solve_injection(nl.ground()).is_err());
        assert!(fac.solve_injection_pair(Some(a), a).is_err());
    }

    #[test]
    #[should_panic(expected = "not in solved netlist")]
    fn voltage_of_foreign_node_panics() {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        nl.add_resistor(a, nl.ground(), 1.0).unwrap();
        let sol = AcSolver::new(&nl).unwrap().solve(1e6).unwrap();
        sol.voltage(NodeId(9));
    }
}
