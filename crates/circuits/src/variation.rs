use rand::Rng;
use serde::{Deserialize, Serialize};

use cbmf_stats::normal;

use crate::error::CircuitError;

/// A class of matched unit devices in a testbench (e.g. "the 64 unit
/// fingers of the input transistor").
///
/// Every finger in the class owns `params_per_finger` independent
/// standard-normal mismatch variables in the global variation vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceClass {
    /// Human-readable name, e.g. `"M1 input pair"`.
    pub name: String,
    /// Number of unit fingers in the class.
    pub fingers: usize,
    /// Mismatch variables per finger (≤ 9, the [`crate::MosfetDeltas`] layout).
    pub params_per_finger: usize,
}

impl DeviceClass {
    /// Creates a device class.
    ///
    /// # Panics
    ///
    /// Panics if `fingers == 0` or `params_per_finger` is 0 or > 9.
    pub fn new(name: impl Into<String>, fingers: usize, params_per_finger: usize) -> Self {
        assert!(fingers > 0, "a device class needs at least one finger");
        assert!(
            (1..=9).contains(&params_per_finger),
            "params_per_finger must be in 1..=9"
        );
        DeviceClass {
            name: name.into(),
            fingers,
            params_per_finger,
        }
    }

    /// Total variation variables owned by this class.
    pub fn dim(&self) -> usize {
        self.fingers * self.params_per_finger
    }
}

/// Layout of a testbench's process-variation vector `x`.
///
/// The vector is organized as
/// `[ inter-die globals | class 0 fingers | class 1 fingers | … ]`,
/// with each finger's parameters contiguous. This mirrors how foundry
/// statistical models separate inter-die (global, shared by all devices)
/// components from local mismatch (independent per unit device), and it is
/// what produces the approximately-sparse structure the paper's sparse
/// regression exploits: a handful of strong global variables plus a long
/// tail of individually-weak mismatch variables.
///
/// # Examples
///
/// ```
/// use cbmf_circuits::{DeviceClass, VariationModel};
///
/// let model = VariationModel::new(16, vec![
///     DeviceClass::new("M1", 64, 8),
///     DeviceClass::new("M2", 92, 8),
/// ]);
/// assert_eq!(model.dim(), 16 + (64 + 92) * 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    inter_die: usize,
    classes: Vec<DeviceClass>,
    /// Offset of each class's block in the variation vector.
    offsets: Vec<usize>,
    dim: usize,
}

impl VariationModel {
    /// Creates a model with `inter_die` global variables and the given
    /// device classes.
    pub fn new(inter_die: usize, classes: Vec<DeviceClass>) -> Self {
        let mut offsets = Vec::with_capacity(classes.len());
        let mut cursor = inter_die;
        for c in &classes {
            offsets.push(cursor);
            cursor += c.dim();
        }
        VariationModel {
            inter_die,
            classes,
            offsets,
            dim: cursor,
        }
    }

    /// Total dimension of the variation vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of inter-die (global) variables.
    pub fn inter_die_count(&self) -> usize {
        self.inter_die
    }

    /// The device classes, in layout order.
    pub fn classes(&self) -> &[DeviceClass] {
        &self.classes
    }

    /// Validates that `x` has the right dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BadInput`] on length mismatch.
    pub fn check(&self, x: &[f64]) -> Result<(), CircuitError> {
        if x.len() != self.dim {
            return Err(CircuitError::BadInput {
                what: format!(
                    "variation vector has length {}, model expects {}",
                    x.len(),
                    self.dim
                ),
            });
        }
        Ok(())
    }

    /// The inter-die block of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the inter-die block (call
    /// [`VariationModel::check`] first on untrusted input).
    pub fn inter_die<'x>(&self, x: &'x [f64]) -> &'x [f64] {
        &x[..self.inter_die]
    }

    /// The mismatch parameters of one finger.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `finger` is out of range, or `x` is too short.
    pub fn finger_params<'x>(&self, x: &'x [f64], class: usize, finger: usize) -> &'x [f64] {
        let c = &self.classes[class];
        assert!(finger < c.fingers, "finger {finger} out of range");
        let start = self.offsets[class] + finger * c.params_per_finger;
        &x[start..start + c.params_per_finger]
    }

    /// Global index of a specific finger parameter (for interpreting fitted
    /// model coefficients back in circuit terms).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn param_index(&self, class: usize, finger: usize, param: usize) -> usize {
        let c = &self.classes[class];
        assert!(finger < c.fingers && param < c.params_per_finger);
        self.offsets[class] + finger * c.params_per_finger + param
    }

    /// Draws a standard-normal variation vector of the right dimension.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        normal::sample_vec(rng, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbmf_stats::seeded_rng;

    fn model() -> VariationModel {
        VariationModel::new(
            4,
            vec![DeviceClass::new("a", 3, 2), DeviceClass::new("b", 2, 5)],
        )
    }

    #[test]
    fn dimensions_add_up() {
        let m = model();
        assert_eq!(m.dim(), 4 + 6 + 10);
        assert_eq!(m.inter_die_count(), 4);
        assert_eq!(m.classes().len(), 2);
    }

    #[test]
    fn layout_is_contiguous_and_disjoint() {
        let m = model();
        let x: Vec<f64> = (0..m.dim()).map(|i| i as f64).collect();
        assert_eq!(m.inter_die(&x), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.finger_params(&x, 0, 0), &[4.0, 5.0]);
        assert_eq!(m.finger_params(&x, 0, 2), &[8.0, 9.0]);
        assert_eq!(m.finger_params(&x, 1, 0), &[10.0, 11.0, 12.0, 13.0, 14.0]);
        assert_eq!(m.finger_params(&x, 1, 1)[4], 19.0);
        assert_eq!(m.param_index(1, 1, 4), 19);
    }

    #[test]
    fn every_index_is_owned_exactly_once() {
        let m = model();
        let mut hits = vec![0usize; m.dim()];
        for h in hits.iter_mut().take(m.inter_die_count()) {
            *h += 1;
        }
        for (ci, c) in m.classes().iter().enumerate() {
            for f in 0..c.fingers {
                for p in 0..c.params_per_finger {
                    hits[m.param_index(ci, f, p)] += 1;
                }
            }
        }
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn check_validates_length() {
        let m = model();
        assert!(m.check(&vec![0.0; m.dim()]).is_ok());
        assert!(m.check(&vec![0.0; m.dim() - 1]).is_err());
    }

    #[test]
    fn sample_has_right_dim_and_is_reproducible() {
        let m = model();
        let mut r1 = seeded_rng(5);
        let mut r2 = seeded_rng(5);
        let x1 = m.sample(&mut r1);
        let x2 = m.sample(&mut r2);
        assert_eq!(x1.len(), m.dim());
        assert_eq!(x1, x2);
    }

    #[test]
    #[should_panic(expected = "finger 3 out of range")]
    fn finger_out_of_range_panics() {
        let m = model();
        let x = vec![0.0; m.dim()];
        m.finger_params(&x, 0, 3);
    }

    #[test]
    #[should_panic(expected = "params_per_finger must be in 1..=9")]
    fn class_validates_params() {
        DeviceClass::new("bad", 1, 10);
    }

    #[test]
    fn paper_dimensions_are_reachable() {
        // LNA: 16 inter-die + 156 fingers × 8 params = 1264.
        let lna = VariationModel::new(
            16,
            vec![
                DeviceClass::new("m1", 64, 8),
                DeviceClass::new("m2", 48, 8),
                DeviceClass::new("mirror", 44, 8),
            ],
        );
        assert_eq!(lna.dim(), 1264);
        // Mixer: 16 inter-die + 143 fingers × 9 params = 1303.
        let mixer = VariationModel::new(
            16,
            vec![
                DeviceClass::new("gm", 55, 9),
                DeviceClass::new("sw", 64, 9),
                DeviceClass::new("bias", 24, 9),
            ],
        );
        assert_eq!(mixer.dim(), 1303);
    }
}
