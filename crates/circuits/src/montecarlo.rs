use cbmf_linalg::Matrix;
use cbmf_trace::Counter;
use rand::Rng;

use crate::cost::VirtualCost;
use crate::error::CircuitError;
use crate::testbench::Testbench;

/// Circuit simulations executed by Monte Carlo collection (one per
/// (state, sample) pair, successful or not).
static MC_SIMULATIONS: Counter = Counter::new("circuits.montecarlo.simulations");

/// Monte Carlo samples collected for one knob state.
#[derive(Debug, Clone)]
pub struct StateSamples {
    /// Variation vectors, one per row (`n × d`).
    pub x: Matrix,
    /// Metric values, one row per sample, one column per metric (`n × p`).
    pub y: Matrix,
}

impl StateSamples {
    /// Number of samples in this state.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True if the state holds no samples.
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The values of metric `m` across all samples of this state.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn metric(&self, m: usize) -> Vec<f64> {
        self.y.col(m)
    }
}

/// A complete tunable-circuit dataset: per-state Monte Carlo samples plus
/// the virtual simulation cost that produced them.
#[derive(Debug, Clone)]
pub struct TunableDataset {
    /// Testbench identifier.
    pub name: String,
    /// Metric names, matching the columns of every [`StateSamples::y`].
    pub metric_names: Vec<String>,
    /// One entry per knob state.
    pub states: Vec<StateSamples>,
    /// Virtual simulation cost charged to collect this dataset.
    pub cost: VirtualCost,
}

impl TunableDataset {
    /// Number of knob states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of simulated samples across all states.
    pub fn total_samples(&self) -> usize {
        self.states.iter().map(StateSamples::len).sum()
    }

    /// Index of a metric by name.
    pub fn metric_index(&self, name: &str) -> Option<usize> {
        self.metric_names.iter().position(|m| m == name)
    }
}

/// Monte Carlo sample collector over a [`Testbench`].
///
/// Mirrors the paper's data-collection protocol: for every knob state,
/// `samples_per_state` independent variation vectors are drawn and the
/// circuit is simulated once per (state, sample), with every simulation
/// charged to the virtual cost meter.
///
/// # Examples
///
/// ```no_run
/// use cbmf_circuits::{Lna, MonteCarlo};
///
/// # fn main() -> Result<(), cbmf_circuits::CircuitError> {
/// let lna = Lna::new();
/// let mut rng = cbmf_stats::seeded_rng(1);
/// let training = MonteCarlo::new(15).collect(&lna, &mut rng)?;
/// assert_eq!(training.num_states(), 32);
/// assert_eq!(training.total_samples(), 32 * 15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    samples_per_state: usize,
}

impl MonteCarlo {
    /// Creates a collector drawing `samples_per_state` samples per state.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_state == 0`.
    pub fn new(samples_per_state: usize) -> Self {
        assert!(samples_per_state > 0, "need at least one sample per state");
        MonteCarlo { samples_per_state }
    }

    /// Samples per state this collector draws.
    pub fn samples_per_state(&self) -> usize {
        self.samples_per_state
    }

    /// Runs the Monte Carlo collection, fanning the independent
    /// (state, sample) simulations out across threads.
    ///
    /// One base seed is drawn from the caller's generator, and every
    /// (state, sample) pair derives its own private RNG from a hash of
    /// `(base, state, index)`. The drawn variations therefore depend only
    /// on the caller's stream position — never on how pairs are scheduled —
    /// so the dataset is byte-identical at any thread count (including 1).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the testbench; with several
    /// failures in flight, the one at the lowest (state, sample) index wins.
    pub fn collect<T: Testbench + Sync + ?Sized, R: Rng + ?Sized>(
        &self,
        tb: &T,
        rng: &mut R,
    ) -> Result<TunableDataset, CircuitError> {
        let _span = cbmf_trace::span("monte_carlo");
        let d = tb.num_variables();
        let k = tb.num_states();
        let p = tb.metric_names().len();
        let n = self.samples_per_state;
        MC_SIMULATIONS.add((k * n) as u64);
        let base = rng.next_u64();
        let sims = cbmf_parallel::par_map_indexed(k * n, 8, |idx| {
            let mut srng = cbmf_stats::seeded_rng(sample_seed(base, idx / n, idx % n));
            let x: Vec<f64> = (0..d)
                .map(|_| cbmf_stats::normal::sample(&mut srng))
                .collect();
            let metrics = tb.simulate(idx / n, &x)?;
            debug_assert_eq!(metrics.len(), p);
            Ok::<_, CircuitError>((x, metrics))
        });
        let mut sims = sims.into_iter();
        let mut states = Vec::with_capacity(k);
        for _ in 0..k {
            let mut x = Matrix::zeros(n, d);
            let mut y = Matrix::zeros(n, p);
            for i in 0..n {
                let (xr, yr) = sims.next().expect("one result per (state, sample)")?;
                x.row_mut(i).copy_from_slice(&xr);
                y.row_mut(i).copy_from_slice(&yr);
            }
            states.push(StateSamples { x, y });
        }
        let cost = tb.cost_model().charge(n * k);
        Ok(TunableDataset {
            name: tb.name().to_string(),
            metric_names: tb.metric_names().iter().map(|s| s.to_string()).collect(),
            states,
            cost,
        })
    }
}

/// Derives the private RNG seed of one (state, sample) pair: a SplitMix64
/// finalizer over the triple, so neighbouring pairs get decorrelated
/// streams while the mapping stays pure — the scheduling of the parallel
/// collection can never influence the drawn values.
fn sample_seed(base: u64, state: usize, index: usize) -> u64 {
    let mut z = base
        .wrapping_add((state as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SimCostModel;
    use cbmf_stats::seeded_rng;

    /// A deterministic toy testbench for collector tests.
    #[derive(Debug)]
    struct Toy;

    impl Testbench for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn num_states(&self) -> usize {
            3
        }
        fn num_variables(&self) -> usize {
            4
        }
        fn metric_names(&self) -> &[&'static str] {
            &["sum", "first"]
        }
        fn simulate(&self, state: usize, x: &[f64]) -> Result<Vec<f64>, CircuitError> {
            if state >= 3 {
                return Err(CircuitError::BadInput {
                    what: "state out of range".to_string(),
                });
            }
            let s: f64 = x.iter().sum::<f64>() + state as f64;
            Ok(vec![s, x[0]])
        }
        fn cost_model(&self) -> SimCostModel {
            SimCostModel::new(2.0)
        }
    }

    #[test]
    fn collects_expected_shapes_and_cost() {
        let mut rng = seeded_rng(1);
        let ds = MonteCarlo::new(5).collect(&Toy, &mut rng).unwrap();
        assert_eq!(ds.num_states(), 3);
        assert_eq!(ds.total_samples(), 15);
        assert_eq!(ds.states[0].x.shape(), (5, 4));
        assert_eq!(ds.states[0].y.shape(), (5, 2));
        assert_eq!(ds.cost.samples(), 15);
        assert!((ds.cost.seconds() - 30.0).abs() < 1e-12);
        assert_eq!(ds.metric_index("first"), Some(1));
        assert_eq!(ds.metric_index("nope"), None);
    }

    #[test]
    fn metrics_match_testbench_function() {
        let mut rng = seeded_rng(2);
        let ds = MonteCarlo::new(4).collect(&Toy, &mut rng).unwrap();
        for (k, st) in ds.states.iter().enumerate() {
            for i in 0..st.len() {
                let expected: f64 = st.x.row(i).iter().sum::<f64>() + k as f64;
                assert!((st.y[(i, 0)] - expected).abs() < 1e-12);
                assert_eq!(st.y[(i, 1)], st.x[(i, 0)]);
            }
        }
    }

    #[test]
    fn reproducible_across_equal_seeds() {
        let mut r1 = seeded_rng(9);
        let mut r2 = seeded_rng(9);
        let d1 = MonteCarlo::new(3).collect(&Toy, &mut r1).unwrap();
        let d2 = MonteCarlo::new(3).collect(&Toy, &mut r2).unwrap();
        assert_eq!(d1.states[2].x, d2.states[2].x);
        assert_eq!(d1.states[2].y, d2.states[2].y);
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        let collect_at = |threads: usize| {
            cbmf_parallel::with_threads(threads, || {
                let mut rng = seeded_rng(11);
                MonteCarlo::new(7).collect(&Toy, &mut rng).unwrap()
            })
        };
        let one = collect_at(1);
        for threads in [2, 3, 8] {
            let many = collect_at(threads);
            assert_eq!(one.states.len(), many.states.len());
            for (k, (a, b)) in one.states.iter().zip(&many.states).enumerate() {
                assert_eq!(a.x, b.x, "x of state {k} at {threads} threads");
                assert_eq!(a.y, b.y, "y of state {k} at {threads} threads");
            }
        }
    }

    #[test]
    fn states_get_independent_samples() {
        let mut rng = seeded_rng(3);
        let ds = MonteCarlo::new(3).collect(&Toy, &mut rng).unwrap();
        assert_ne!(ds.states[0].x, ds.states[1].x);
    }

    #[test]
    fn metric_column_accessor() {
        let mut rng = seeded_rng(4);
        let ds = MonteCarlo::new(3).collect(&Toy, &mut rng).unwrap();
        let firsts = ds.states[0].metric(1);
        assert_eq!(firsts.len(), 3);
        assert_eq!(firsts[0], ds.states[0].x[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        MonteCarlo::new(0);
    }
}
