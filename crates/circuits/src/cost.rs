use serde::{Deserialize, Serialize};

/// Virtual simulation-cost model.
///
/// The paper's Tables 1–2 report "simulation cost (hours)" measured on a
/// 2.53 GHz Linux server running transistor-level Monte Carlo. Our substrate
/// is a fast behavioural simulator, so absolute wall-clock is meaningless;
/// what the tables compare is `N_samples × cost_per_sample`, and that is
/// what this model charges. The per-sample constants are calibrated from the
/// paper itself: LNA 2.72 h / 1120 samples ≈ 8.74 s, mixer 17.20 h / 1120
/// samples ≈ 55.3 s.
///
/// # Examples
///
/// ```
/// use cbmf_circuits::SimCostModel;
///
/// let lna = SimCostModel::lna_paper();
/// let cost = lna.charge(1120);
/// assert!((cost.hours() - 2.72).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimCostModel {
    seconds_per_sample: f64,
}

impl SimCostModel {
    /// Creates a cost model charging `seconds_per_sample` per simulated
    /// sample point.
    ///
    /// # Panics
    ///
    /// Panics if `seconds_per_sample` is not positive and finite.
    pub fn new(seconds_per_sample: f64) -> Self {
        assert!(
            seconds_per_sample.is_finite() && seconds_per_sample > 0.0,
            "seconds_per_sample must be positive and finite"
        );
        SimCostModel { seconds_per_sample }
    }

    /// The LNA per-sample cost calibrated from Table 1 (≈ 8.74 s).
    pub fn lna_paper() -> Self {
        SimCostModel::new(2.72 * 3600.0 / 1120.0)
    }

    /// The mixer per-sample cost calibrated from Table 2 (≈ 55.3 s).
    pub fn mixer_paper() -> Self {
        SimCostModel::new(17.20 * 3600.0 / 1120.0)
    }

    /// Seconds charged per simulated sample.
    pub fn seconds_per_sample(&self) -> f64 {
        self.seconds_per_sample
    }

    /// Cost of simulating `samples` points.
    pub fn charge(&self, samples: usize) -> VirtualCost {
        VirtualCost {
            samples,
            seconds: self.seconds_per_sample * samples as f64,
        }
    }
}

/// An accumulated virtual simulation cost.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VirtualCost {
    samples: usize,
    seconds: f64,
}

impl VirtualCost {
    /// A zero cost.
    pub fn zero() -> Self {
        VirtualCost::default()
    }

    /// Number of simulated sample points charged so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Cost in virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Cost in virtual hours (the unit of the paper's tables).
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// Adds another cost onto this one.
    pub fn add(&mut self, other: VirtualCost) {
        self.samples += other.samples;
        self.seconds += other.seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_round_trips() {
        let lna = SimCostModel::lna_paper();
        assert!((lna.charge(1120).hours() - 2.72).abs() < 1e-9);
        assert!((lna.charge(480).hours() - 2.72 * 480.0 / 1120.0).abs() < 1e-9);
        let mixer = SimCostModel::mixer_paper();
        assert!((mixer.charge(1120).hours() - 17.20).abs() < 1e-9);
    }

    #[test]
    fn cost_accumulates() {
        let m = SimCostModel::new(10.0);
        let mut total = VirtualCost::zero();
        total.add(m.charge(3));
        total.add(m.charge(7));
        assert_eq!(total.samples(), 10);
        assert!((total.seconds() - 100.0).abs() < 1e-12);
        assert!((total.hours() - 100.0 / 3600.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "seconds_per_sample must be positive")]
    fn bad_rate_panics() {
        SimCostModel::new(0.0);
    }
}
