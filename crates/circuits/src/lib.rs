//! Analog/RF circuit-simulation substrate for the C-BMF reproduction.
//!
//! The paper evaluates C-BMF on transistor-level Monte Carlo data from a
//! commercial 32 nm SOI CMOS process — a proprietary substrate we cannot
//! ship. This crate is the documented substitution (see `DESIGN.md`): a
//! small-signal modified-nodal-analysis (MNA) simulator with a behavioural
//! MOS model, a Pelgrom-style process-variation model, and the two tunable
//! testbenches of the paper:
//!
//! * [`Lna`] — a tunable 2.4 GHz low-noise amplifier with 32 knob states and
//!   1264 process-variation variables (noise figure, voltage gain, IIP3).
//! * [`Mixer`] — a tunable 2.4 GHz down-conversion mixer with 32 states and
//!   1303 variables (noise figure, voltage gain, input-referred 1 dB
//!   compression point).
//!
//! What matters for the statistical experiments is preserved: each
//! performance metric is a smooth function of >1000 Gaussian variables with
//! a small number of strong (inter-die) contributors and a long tail of weak
//! (per-unit-device mismatch) contributors, and the functions for different
//! knob states are strongly but imperfectly correlated because the same
//! physical devices are active in every state.
//!
//! [`MonteCarlo`] collects training/testing sets from any [`Testbench`] and
//! charges virtual simulation cost through [`SimCostModel`], which is how the
//! "simulation cost (hours)" rows of Tables 1–2 are regenerated without a
//! 2.53 GHz Linux server from 2016.
//!
//! # Examples
//!
//! ```
//! use cbmf_circuits::{Lna, Testbench};
//!
//! # fn main() -> Result<(), cbmf_circuits::CircuitError> {
//! let lna = Lna::new();
//! assert_eq!(lna.num_states(), 32);
//! assert_eq!(lna.num_variables(), 1264);
//! let nominal = vec![0.0; lna.num_variables()];
//! let poi = lna.simulate(0, &nominal)?;
//! assert_eq!(poi.len(), 3); // NF, VG, IIP3
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod error;
mod lna;
mod mixer;
mod mna;
mod montecarlo;
mod mosfet;
mod netlist;
mod noise;
mod testbench;
mod variation;
mod vco;

pub use cost::{SimCostModel, VirtualCost};
pub use error::CircuitError;
pub use lna::Lna;
pub use mixer::Mixer;
pub use mna::{AcSolution, AcSolver, FactoredAc};
pub use montecarlo::{MonteCarlo, StateSamples, TunableDataset};
pub use mosfet::{Mosfet, MosfetDeltas, SmallSignal};
pub use netlist::{Element, Netlist, NodeId};
pub use noise::{NoiseAnalysis, NoiseContribution};
pub use testbench::Testbench;
pub use variation::{DeviceClass, VariationModel};
pub use vco::Vco;

/// Boltzmann constant times four times the standard noise temperature
/// (290 K), in joules: the thermal-noise prefactor `4kT ≈ 1.6e-20`.
pub const FOUR_K_T: f64 = 4.0 * 1.380649e-23 * 290.0;
