use crate::cost::SimCostModel;
use crate::error::CircuitError;

/// A tunable circuit under test: K knob states, a process-variation space,
/// and a set of performance metrics evaluated per (state, sample).
///
/// This is the interface between the circuit substrate and the modeling
/// layer: [`crate::MonteCarlo`] drives any `Testbench` to produce the
/// training/testing sets of the paper's experiments.
pub trait Testbench {
    /// Short identifier (used in reports), e.g. `"lna"`.
    fn name(&self) -> &str;

    /// Number of knob configurations (the paper's K; 32 for both circuits).
    fn num_states(&self) -> usize;

    /// Dimension of the process-variation vector (the paper's device-level
    /// random variables; 1264 for the LNA, 1303 for the mixer).
    fn num_variables(&self) -> usize;

    /// Names of the performance metrics, e.g. `["nf_db", "vg_db", "iip3_dbm"]`.
    fn metric_names(&self) -> &[&'static str];

    /// Simulates one sample: evaluates all metrics for knob state `state` at
    /// variation vector `x` (standard-normal coordinates).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BadInput`] if `state` is out of range or `x` has
    ///   the wrong length.
    /// * [`CircuitError::SolveFailed`] if the underlying MNA system cannot
    ///   be solved (should not happen inside ±6σ).
    fn simulate(&self, state: usize, x: &[f64]) -> Result<Vec<f64>, CircuitError>;

    /// The virtual cost model charged per simulated sample (see
    /// [`SimCostModel`]).
    fn cost_model(&self) -> SimCostModel;
}
