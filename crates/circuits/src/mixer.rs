use crate::cost::SimCostModel;
use crate::error::CircuitError;
use crate::lna::{
    aggregate_fingers, mirror_bias_error, InterDieWeights, G_BIAS, G_CPASSIVE, G_GAMMA, G_IND,
    G_PACKAGE, G_RSHEET,
};
use crate::mna::AcSolver;
use crate::mosfet::Mosfet;
use crate::netlist::Netlist;
use crate::testbench::Testbench;
use crate::variation::{DeviceClass, VariationModel};
use crate::FOUR_K_T;

/// Inter-die variables shared with the LNA layout.
const INTER_DIE: usize = 16;
/// Mismatch parameters per unit finger (full [`crate::MosfetDeltas`] set).
const PARAMS_PER_FINGER: usize = 9;
/// Unit fingers of the RF transconductance stage.
const GM_FINGERS: usize = 55;
/// Unit fingers of the switching quad (total across the four switches).
const SW_FINGERS: usize = 64;
/// Unit fingers of the tail-current mirror.
const MIRROR_FINGERS: usize = 24;

/// The tunable 2.4 GHz down-conversion mixer of the paper's Section 4.2.
///
/// A double-balanced (Gilbert) down-converter: the RF input network and
/// transconductance stage are solved by MNA at 2.4 GHz; frequency
/// translation through the switching quad and the IF load are evaluated
/// behaviourally with the standard 2/π commutation factor, switch
/// transition losses, and per-mechanism output noise. The 32 knob states
/// are set by **two tunable load resistors** (the paper's knob), swept
/// jointly; tuning the loads trades conversion gain against compression.
///
/// Variation space: 16 inter-die variables + (55 + 64 + 24) fingers × 9
/// mismatch parameters = **1303** variables, matching the paper.
///
/// Metrics per (state, sample): noise figure `nf_db`, conversion voltage
/// gain `vg_db`, input-referred 1 dB compression point `i1dbcp_dbm`.
///
/// # Examples
///
/// ```
/// use cbmf_circuits::{Mixer, Testbench};
///
/// # fn main() -> Result<(), cbmf_circuits::CircuitError> {
/// let mixer = Mixer::new();
/// assert_eq!(mixer.num_variables(), 1303);
/// let poi = mixer.simulate(0, &vec![0.0; 1303])?;
/// assert!(poi[0] > 3.0 && poi[0] < 20.0); // NF plausible for a mixer
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mixer {
    variation: VariationModel,
    unit_gm: Mosfet,
    unit_sw: Mosfet,
    /// RF frequency (2.4 GHz).
    freq_rf: f64,
    /// IF frequency where the output noise is evaluated (10 MHz).
    freq_if: f64,
    /// Source resistance, ohms.
    rs: f64,
    /// Nominal tail bias current, amperes.
    bias0: f64,
    /// Nominal single-side load resistance, ohms.
    rload0: f64,
    /// External input matching capacitor, farads.
    cex: f64,
    /// Input matching inductor (tuned at construction), henries.
    lmatch: f64,
    /// LO amplitude at the switch gates, volts.
    v_lo: f64,
}

impl Mixer {
    /// Builds the mixer with the paper's dimensions (32 states, 1303
    /// variables).
    pub fn new() -> Self {
        let variation = VariationModel::new(
            INTER_DIE,
            vec![
                DeviceClass::new("gm stage", GM_FINGERS, PARAMS_PER_FINGER),
                DeviceClass::new("switch quad", SW_FINGERS, PARAMS_PER_FINGER),
                DeviceClass::new("tail mirror", MIRROR_FINGERS, PARAMS_PER_FINGER),
            ],
        );
        debug_assert_eq!(variation.dim(), 1303);
        let freq_rf = 2.4e9;
        let w0 = std::f64::consts::TAU * freq_rf;
        let unit_gm = Mosfet::rf_nmos(GM_FINGERS, 0.0);
        let unit_sw = Mosfet::rf_nmos(SW_FINGERS, 0.0);
        let bias0 = 3.0e-3;
        let cex = 250e-15;
        let nominal = unit_gm.small_signal(
            bias0 / GM_FINGERS as f64,
            &crate::mosfet::MosfetDeltas::default(),
            freq_rf,
        );
        let cgs_total = nominal.cgs * GM_FINGERS as f64 + cex;
        let lmatch = 1.0 / (w0 * w0 * cgs_total);

        Mixer {
            variation,
            unit_gm,
            unit_sw,
            freq_rf,
            freq_if: 10.0e6,
            rs: 50.0,
            bias0,
            rload0: 400.0,
            cex,
            lmatch,
            v_lo: 0.6,
        }
    }

    /// The variation-space layout (for interpreting fitted coefficients).
    pub fn variation_model(&self) -> &VariationModel {
        &self.variation
    }

    /// The two tunable load resistances of knob state `k` (before
    /// variation), ohms.
    ///
    /// # Panics
    ///
    /// Panics if `state >= 32`.
    pub fn state_loads(&self, state: usize) -> (f64, f64) {
        assert!(state < 32, "mixer has 32 states");
        let r1 = self.rload0 * (0.75 + 0.020 * state as f64);
        let r2 = self.rload0 * (0.80 + 0.018 * state as f64);
        (r1, r2)
    }
}

impl Default for Mixer {
    fn default() -> Self {
        Mixer::new()
    }
}

impl Testbench for Mixer {
    fn name(&self) -> &str {
        "mixer"
    }

    fn num_states(&self) -> usize {
        32
    }

    fn num_variables(&self) -> usize {
        self.variation.dim()
    }

    fn metric_names(&self) -> &[&'static str] {
        &["nf_db", "vg_db", "i1dbcp_dbm"]
    }

    fn simulate(&self, state: usize, x: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if state >= self.num_states() {
            return Err(CircuitError::BadInput {
                what: format!("state {state} out of range (32 states)"),
            });
        }
        self.variation.check(x)?;
        let g = self.variation.inter_die(x);
        let w = InterDieWeights::nmos();

        // --- Bias path.
        let mirror_err = mirror_bias_error(&self.variation, x, 2);
        let bias = self.bias0 * (1.0 + 0.04 * g[G_BIAS] + mirror_err);

        // --- Device aggregates. The gm stage runs the full tail current;
        // each switch pair carries half on average, and flicker matters at
        // the IF frequency, so switches are evaluated there.
        let gm_stage = aggregate_fingers(
            &self.unit_gm,
            &self.variation,
            x,
            0,
            bias / GM_FINGERS as f64,
            self.freq_rf,
            &w,
        )?;
        let switches = aggregate_fingers(
            &self.unit_sw,
            &self.variation,
            x,
            1,
            0.5 * bias / SW_FINGERS as f64,
            self.freq_if,
            &w,
        )?;

        // --- Passives under inter-die variation.
        let rs = self.rs * (1.0 + 0.02 * g[G_PACKAGE]);
        let r_sheet = 1.0 + 0.06 * g[G_RSHEET];
        let (r1_nom, r2_nom) = self.state_loads(state);
        let r_load = 0.5 * (r1_nom + r2_nom) * r_sheet;
        let cex = self.cex * (1.0 + 0.05 * g[G_CPASSIVE]);
        let lmatch = self.lmatch * (1.0 + 0.03 * g[G_IND]);
        let gamma_scale = 1.0 + 0.05 * g[G_GAMMA];

        // --- RF input network solved by MNA: |vgs / vsrc| at 2.4 GHz.
        let mut nl = Netlist::new();
        let n_in = nl.add_node();
        let n_gate = nl.add_node();
        let gnd = nl.ground();
        let v_src = 1.0;
        nl.add_current_source(gnd, n_in, v_src / rs)?;
        nl.add_resistor(n_in, gnd, rs)?;
        nl.add_inductor(n_in, n_gate, lmatch)?;
        nl.add_capacitor(n_gate, gnd, gm_stage.cgs + cex)?;
        // Gate bias network loss (deliberately lossy: keeps the passive
        // input boost modest, as in practical mixer front-ends).
        nl.add_resistor(n_gate, gnd, 500.0)?;
        let sol = AcSolver::new(&nl)?.solve(self.freq_rf)?;
        let h_in = sol.voltage(n_gate).abs() / v_src;

        // --- Commutation: ideal 2/π minus switch-transition loss. The loss
        // grows with the switch overdrive relative to the LO amplitude
        // (slower switching), which couples switch variations into VG/NF.
        let vov_sw = (bias / switches.gm).min(0.6); // ≈ 2·(I/2)/gm_total
        let transition_loss = (vov_sw / (std::f64::consts::PI * self.v_lo)).min(0.5);
        let commutation = (2.0 / std::f64::consts::PI) * (1.0 - transition_loss);

        // Effective load includes the gm-stage and switch output
        // conductances in parallel with each resistor.
        let r_eff = 1.0 / (1.0 / r_load + gm_stage.gds + 0.5 * switches.gds);
        let conv_gain = commutation * gm_stage.gm * h_in * r_eff;
        let vg_db = 20.0 * conv_gain.max(1e-12).log10();

        // --- Output noise at IF (V²/Hz). White RF-path mechanisms fold from
        // both sidebands (factor 2); the single-sideband noise figure then
        // references only the signal-sideband source noise (s_src / 2).
        let s_src = 4.0 * 1.380649e-23 * 290.0 * rs * conv_gain * conv_gain;
        let i2r = commutation * r_eff; // current-to-output transimpedance
        let s_gm = 2.0 * i2r * i2r * gm_stage.thermal_noise_psd * gamma_scale;
        // Switches in a Gilbert quad contribute strongly around the LO
        // transitions (the classical 4kTγI/(πA_LO)-type term); modeled as
        // their aggregate channel noise weighted by a transition factor,
        // plus flicker at IF leaking through commutation imbalance.
        let sw_transition_factor = 2.0 * (1.0 + vov_sw / self.v_lo);
        let s_sw_thermal =
            r_eff * r_eff * switches.thermal_noise_psd * gamma_scale * sw_transition_factor;
        let s_sw_flicker = r_eff * r_eff * switches.flicker_noise_psd * 0.25;
        // Two load resistors in the differential output.
        let s_load = 2.0 * FOUR_K_T * r_eff;
        let total = s_src + s_gm + s_sw_thermal + s_sw_flicker + s_load;
        let nf_db = 10.0 * (2.0 * total / s_src).log10();

        // --- Input-referred 1 dB compression: the gm-stage third-order
        // nonlinearity (P1dB = PIIP3 − 9.64 dB) combined with the output
        // voltage-swing limit set by the IR headroom across the loads.
        // Larger load states mean more gain but earlier output clipping,
        // which is exactly the gain/linearity trade the tuning knob buys.
        let a_iip3_sq = (4.0 / 3.0) * (gm_stage.gm / gm_stage.gm3.abs().max(1e-12));
        let a_gm_sq = a_iip3_sq * 10f64.powf(-0.964) / (h_in * h_in); // gm-limited A²(1dB) at the source
                                                                      // Supply headroom left after the static IR drop across the loads:
                                                                      // bigger load states burn more headroom, clipping earlier.
        let v_swing = (1.0 - 0.5 * bias * r_eff).max(0.1);
        let a_swing_sq = (v_swing / conv_gain).powi(2);
        let a_comb_sq = 1.0 / (1.0 / a_gm_sq + 1.0 / a_swing_sq);
        let i1dbcp_dbm = 10.0 * (a_comb_sq / (8.0 * rs) * 1000.0).log10();

        Ok(vec![nf_db, vg_db, i1dbcp_dbm])
    }

    fn cost_model(&self) -> SimCostModel {
        SimCostModel::mixer_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbmf_stats::seeded_rng;

    #[test]
    fn dimensions_match_the_paper() {
        let mixer = Mixer::new();
        assert_eq!(mixer.num_states(), 32);
        assert_eq!(mixer.num_variables(), 1303);
    }

    #[test]
    fn nominal_metrics_are_physical() {
        let mixer = Mixer::new();
        let x = vec![0.0; 1303];
        for state in [0, 15, 31] {
            let m = mixer.simulate(state, &x).unwrap();
            assert!(
                m[0] > 3.0 && m[0] < 20.0,
                "NF = {} dB at state {state}",
                m[0]
            );
            assert!(
                m[1] > 0.0 && m[1] < 30.0,
                "VG = {} dB at state {state}",
                m[1]
            );
            assert!(
                m[2] > -30.0 && m[2] < 10.0,
                "I1dBCP = {} dBm at state {state}",
                m[2]
            );
        }
    }

    #[test]
    fn gain_increases_with_load_state() {
        let mixer = Mixer::new();
        let x = vec![0.0; 1303];
        let low = mixer.simulate(0, &x).unwrap()[1];
        let high = mixer.simulate(31, &x).unwrap()[1];
        assert!(high > low, "bigger loads, more conversion gain");
    }

    #[test]
    fn state_loads_are_monotone_pairs() {
        let mixer = Mixer::new();
        let (a0, b0) = mixer.state_loads(0);
        let (a31, b31) = mixer.state_loads(31);
        assert!(a31 > a0 && b31 > b0);
        assert_ne!(a0, b0, "two distinct tunable resistors");
    }

    #[test]
    fn switch_mismatch_affects_metrics() {
        let mixer = Mixer::new();
        let base = mixer.simulate(5, &vec![0.0; 1303]).unwrap();
        let mut x = vec![0.0; 1303];
        // Shift all switch fingers' VTH coherently via the class block.
        for f in 0..SW_FINGERS {
            let idx = mixer.variation_model().param_index(1, f, 0);
            x[idx] = 2.0;
        }
        let shifted = mixer.simulate(5, &x).unwrap();
        assert!((base[1] - shifted[1]).abs() > 1e-6, "switches touch VG");
    }

    #[test]
    fn random_samples_stay_finite() {
        let mixer = Mixer::new();
        let mut rng = seeded_rng(6);
        for _ in 0..5 {
            let x = mixer.variation_model().sample(&mut rng);
            let m = mixer.simulate(20, &x).unwrap();
            assert!(m.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn deterministic() {
        let mixer = Mixer::new();
        let mut rng = seeded_rng(7);
        let x = mixer.variation_model().sample(&mut rng);
        assert_eq!(
            mixer.simulate(3, &x).unwrap(),
            mixer.simulate(3, &x).unwrap()
        );
    }

    #[test]
    fn bad_inputs_rejected() {
        let mixer = Mixer::new();
        assert!(mixer.simulate(32, &vec![0.0; 1303]).is_err());
        assert!(mixer.simulate(0, &[0.0; 3]).is_err());
    }

    #[test]
    fn cost_model_matches_table2() {
        let mixer = Mixer::new();
        assert!((mixer.cost_model().charge(1120).hours() - 17.20).abs() < 1e-9);
    }
}
