use std::collections::HashMap;

use crate::error::CircuitError;
use crate::mna::FactoredAc;
use crate::netlist::NodeId;

/// One noise-current source: a white PSD injected between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseContribution {
    /// Label for reporting (e.g. `"M1 thermal"`, `"Rs"`).
    pub label: String,
    /// Current-noise power spectral density in A²/Hz.
    pub psd: f64,
    /// Node the noise current leaves (`None` = ground).
    pub from: Option<NodeId>,
    /// Node the noise current enters.
    pub into: NodeId,
}

impl NoiseContribution {
    /// Creates a contribution injecting between ground and `into`.
    pub fn to_node(label: impl Into<String>, psd: f64, into: NodeId) -> Self {
        NoiseContribution {
            label: label.into(),
            psd,
            from: None,
            into,
        }
    }

    /// Creates a contribution injecting between two non-ground nodes.
    pub fn between(label: impl Into<String>, psd: f64, from: NodeId, into: NodeId) -> Self {
        NoiseContribution {
            label: label.into(),
            psd,
            from: Some(from),
            into,
        }
    }
}

/// Output-referred noise analysis over a factored MNA system.
///
/// For each registered noise source the transfer impedance from its
/// injection terminals to the output is obtained by solving the factored
/// system with a unit current at those terminals (solutions are cached per
/// distinct terminal pair, so the hundred-odd unit fingers that share a
/// drain node cost one solve). Independent sources add in power:
/// `S_out = Σ_i |Z_i|² · S_i`.
///
/// The noise figure follows the standard definition
/// `F = S_out,total / S_out,source` where the "source" contribution is the
/// thermal noise of the input termination.
#[derive(Debug, Clone, Default)]
pub struct NoiseAnalysis {
    contributions: Vec<NoiseContribution>,
}

impl NoiseAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        NoiseAnalysis::default()
    }

    /// Registers a noise source and returns its index.
    pub fn add(&mut self, contribution: NoiseContribution) -> usize {
        self.contributions.push(contribution);
        self.contributions.len() - 1
    }

    /// The registered contributions.
    pub fn contributions(&self) -> &[NoiseContribution] {
        &self.contributions
    }

    /// Computes the per-source output noise PSDs (V²/Hz) at the output
    /// `out_p − out_n` (single-ended when `out_n` is `None`).
    ///
    /// # Errors
    ///
    /// Propagates MNA solve failures and invalid injection terminals.
    pub fn output_psds(
        &self,
        fac: &FactoredAc,
        out_p: NodeId,
        out_n: Option<NodeId>,
    ) -> Result<Vec<f64>, CircuitError> {
        let mut cache: HashMap<(Option<usize>, usize), f64> = HashMap::new();
        let mut out = Vec::with_capacity(self.contributions.len());
        for c in &self.contributions {
            let key = (c.from.map(NodeId::index), c.into.index());
            let z_sq = match cache.get(&key) {
                Some(&v) => v,
                None => {
                    let sol = fac.solve_injection_pair(c.from, c.into)?;
                    let z = match out_n {
                        Some(n) => sol.differential(out_p, n),
                        None => sol.voltage(out_p),
                    };
                    let v = z.abs_sq();
                    cache.insert(key, v);
                    v
                }
            };
            out.push(z_sq * c.psd);
        }
        Ok(out)
    }

    /// Total output noise PSD and the noise factor `F` relative to the
    /// contribution at `source_index` (typically the input termination).
    ///
    /// Returns `(total_psd, noise_factor)`; the noise figure in dB is
    /// `10·log10(noise_factor)`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::BadInput`] if `source_index` is out of range or the
    ///   source contributes zero output noise.
    /// * Propagated MNA failures.
    pub fn noise_factor(
        &self,
        fac: &FactoredAc,
        out_p: NodeId,
        out_n: Option<NodeId>,
        source_index: usize,
    ) -> Result<(f64, f64), CircuitError> {
        if source_index >= self.contributions.len() {
            return Err(CircuitError::BadInput {
                what: format!(
                    "source index {source_index} out of range ({})",
                    self.contributions.len()
                ),
            });
        }
        let psds = self.output_psds(fac, out_p, out_n)?;
        let total: f64 = psds.iter().sum();
        let source = psds[source_index];
        if source <= 0.0 {
            return Err(CircuitError::BadInput {
                what: "source contribution is zero; noise factor undefined".to_string(),
            });
        }
        Ok((total, total / source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::AcSolver;
    use crate::netlist::Netlist;
    use crate::FOUR_K_T;

    /// Two equal resistors to ground at one node: each contributes equally,
    /// so F = 2 (NF = 3.01 dB).
    #[test]
    fn equal_resistors_give_3db() {
        let r = 50.0;
        let mut nl = Netlist::new();
        let n = nl.add_node();
        nl.add_resistor(n, nl.ground(), r).unwrap();
        nl.add_resistor(n, nl.ground(), r).unwrap();
        let fac = AcSolver::new(&nl).unwrap().factor(1e9).unwrap();

        let mut na = NoiseAnalysis::new();
        let psd = FOUR_K_T / r;
        let src = na.add(NoiseContribution::to_node("source", psd, n));
        na.add(NoiseContribution::to_node("load", psd, n));
        let (_total, f) = na.noise_factor(&fac, n, None, src).unwrap();
        assert!((f - 2.0).abs() < 1e-12, "F = {f}");
    }

    /// Output noise of a single resistor matches 4kTR.
    #[test]
    fn single_resistor_output_noise_is_4ktr() {
        let r = 1_000.0;
        let mut nl = Netlist::new();
        let n = nl.add_node();
        nl.add_resistor(n, nl.ground(), r).unwrap();
        let fac = AcSolver::new(&nl).unwrap().factor(1e6).unwrap();

        let mut na = NoiseAnalysis::new();
        na.add(NoiseContribution::to_node("r", FOUR_K_T / r, n));
        let psds = na.output_psds(&fac, n, None).unwrap();
        // |Z|²·(4kT/R) = R²·4kT/R = 4kTR.
        assert!((psds[0] - FOUR_K_T * r).abs() / (FOUR_K_T * r) < 1e-12);
    }

    /// Identical injection terminals must be solved once (cache hit), and
    /// scaling a PSD scales the output linearly.
    #[test]
    fn psd_scales_linearly() {
        let mut nl = Netlist::new();
        let n = nl.add_node();
        nl.add_resistor(n, nl.ground(), 100.0).unwrap();
        let fac = AcSolver::new(&nl).unwrap().factor(1e6).unwrap();

        let mut na = NoiseAnalysis::new();
        na.add(NoiseContribution::to_node("a", 1e-21, n));
        na.add(NoiseContribution::to_node("b", 3e-21, n));
        let psds = na.output_psds(&fac, n, None).unwrap();
        assert!((psds[1] / psds[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn differential_output_and_pair_injection() {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        let b = nl.add_node();
        nl.add_resistor(a, nl.ground(), 200.0).unwrap();
        nl.add_resistor(b, nl.ground(), 200.0).unwrap();
        nl.add_resistor(a, b, 400.0).unwrap();
        let fac = AcSolver::new(&nl).unwrap().factor(1e6).unwrap();

        let mut na = NoiseAnalysis::new();
        na.add(NoiseContribution::between("ra_b", 1e-20, a, b));
        let psds = na.output_psds(&fac, a, Some(b)).unwrap();
        assert!(psds[0] > 0.0);
    }

    #[test]
    fn bad_source_index_rejected() {
        let mut nl = Netlist::new();
        let n = nl.add_node();
        nl.add_resistor(n, nl.ground(), 1.0).unwrap();
        let fac = AcSolver::new(&nl).unwrap().factor(1e6).unwrap();
        let na = NoiseAnalysis::new();
        assert!(na.noise_factor(&fac, n, None, 0).is_err());
    }
}
