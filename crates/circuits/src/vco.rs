use crate::cost::SimCostModel;
use crate::error::CircuitError;
use crate::lna::{
    aggregate_fingers, mirror_bias_error, InterDieWeights, G_BIAS, G_CPASSIVE, G_GAMMA, G_IND,
    G_RSHEET,
};
use crate::mna::AcSolver;
use crate::mosfet::Mosfet;
use crate::netlist::Netlist;
use crate::testbench::Testbench;
use crate::variation::{DeviceClass, VariationModel};

/// Inter-die variables shared with the other testbenches.
const INTER_DIE: usize = 16;
/// Mismatch parameters per unit finger.
const PARAMS_PER_FINGER: usize = 8;
/// Unit fingers of the cross-coupled pair (total, both sides).
const PAIR_FINGERS: usize = 48;
/// Unit fingers of the tail-current mirror.
const MIRROR_FINGERS: usize = 36;
/// Unit fingers modeling the switched-capacitor bank switches.
const BANK_FINGERS: usize = 40;

/// A tunable 2.4 GHz-band LC voltage-controlled oscillator — a third
/// testbench beyond the paper's two, exercising the PoI its introduction
/// names first: *phase noise*.
///
/// Topology: NMOS cross-coupled pair (negative gm) across an LC tank with
/// a switched-capacitor bank; a tail mirror sets the bias. The 32 knob
/// states step the capacitor bank, tuning the oscillation frequency (a
/// digitally-controlled oscillator's coarse bank). Phase noise at 1 MHz
/// offset follows Leeson's model fed by the simulated tank quality factor
/// (from an MNA impedance solve at resonance) and the device excess noise.
///
/// Variation space: 16 inter-die + (48 + 36 + 40) fingers × 8 = **1008**
/// variables.
///
/// Metrics per (state, sample): oscillation frequency `freq_ghz`, phase
/// noise `pn_dbchz` at 1 MHz offset, differential amplitude `amp_v`.
///
/// # Examples
///
/// ```
/// use cbmf_circuits::{Testbench, Vco};
///
/// # fn main() -> Result<(), cbmf_circuits::CircuitError> {
/// let vco = Vco::new();
/// assert_eq!(vco.num_variables(), 1008);
/// let m = vco.simulate(0, &vec![0.0; 1008])?;
/// assert!(m[0] > 1.0 && m[0] < 5.0, "freq {} GHz", m[0]);
/// assert!(m[1] < -80.0 && m[1] > -160.0, "PN {} dBc/Hz", m[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vco {
    variation: VariationModel,
    unit_pair: Mosfet,
    /// Tank inductance, henries.
    ltank: f64,
    /// Fixed tank capacitance, farads.
    cfixed: f64,
    /// Capacitor-bank step, farads per knob state.
    cstep: f64,
    /// Tank parallel loss resistance at the nominal corner, ohms.
    rtank0: f64,
    /// Nominal tail current, amperes.
    bias0: f64,
    /// Phase-noise offset frequency, hertz.
    offset: f64,
}

impl Vco {
    /// Builds the VCO (32 states, 1008 variables).
    pub fn new() -> Self {
        let variation = VariationModel::new(
            INTER_DIE,
            vec![
                DeviceClass::new("cross pair", PAIR_FINGERS, PARAMS_PER_FINGER),
                DeviceClass::new("tail mirror", MIRROR_FINGERS, PARAMS_PER_FINGER),
                DeviceClass::new("bank switches", BANK_FINGERS, PARAMS_PER_FINGER),
            ],
        );
        debug_assert_eq!(variation.dim(), 1008);
        Vco {
            variation,
            unit_pair: Mosfet::rf_nmos(PAIR_FINGERS, 0.0),
            ltank: 1.5e-9,
            cfixed: 2.2e-12,
            cstep: 28e-15,
            rtank0: 350.0,
            bias0: 3.0e-3,
            offset: 1.0e6,
        }
    }

    /// The variation-space layout.
    pub fn variation_model(&self) -> &VariationModel {
        &self.variation
    }

    /// Nominal tank capacitance of knob state `k`, farads.
    ///
    /// # Panics
    ///
    /// Panics if `state >= 32`.
    pub fn state_capacitance(&self, state: usize) -> f64 {
        assert!(state < 32, "vco has 32 states");
        self.cfixed + self.cstep * state as f64
    }
}

impl Default for Vco {
    fn default() -> Self {
        Vco::new()
    }
}

impl Testbench for Vco {
    fn name(&self) -> &str {
        "vco"
    }

    fn num_states(&self) -> usize {
        32
    }

    fn num_variables(&self) -> usize {
        self.variation.dim()
    }

    fn metric_names(&self) -> &[&'static str] {
        &["freq_ghz", "pn_dbchz", "amp_v"]
    }

    fn simulate(&self, state: usize, x: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if state >= self.num_states() {
            return Err(CircuitError::BadInput {
                what: format!("state {state} out of range (32 states)"),
            });
        }
        self.variation.check(x)?;
        let g = self.variation.inter_die(x);
        let w = InterDieWeights::nmos();

        // --- Bias.
        let mirror_err = mirror_bias_error(&self.variation, x, 1);
        let bias = self.bias0 * (1.0 + 0.04 * g[G_BIAS] + mirror_err);

        // --- Cross-coupled pair aggregate (each side carries bias/2; the
        // negative-gm seen by the tank is gm_total/2 for the pair).
        let pair = aggregate_fingers(
            &self.unit_pair,
            &self.variation,
            x,
            0,
            0.5 * bias / PAIR_FINGERS as f64,
            2.4e9,
            &w,
        )?;

        // --- Switched-capacitor bank: switch on-resistance mismatch turns
        // into an effective capacitance/Q error per engaged unit.
        let bank_class = 2;
        let mut bank_err = 0.0;
        for f in 0..BANK_FINGERS {
            let p = self.variation.finger_params(x, bank_class, f);
            bank_err += 0.004 * p[0] + 0.006 * p[5].min(3.0); // vth + cap entries
        }
        bank_err /= BANK_FINGERS as f64;

        // --- Tank under variation.
        let ind_scale = 1.0 + 0.03 * g[G_IND];
        let cap_scale = (1.0 + 0.05 * g[G_CPASSIVE]) * (1.0 + bank_err);
        let ltank = self.ltank * ind_scale;
        let ctank = (self.state_capacitance(state) + pair.cgs + pair.cgd) * cap_scale;
        let rtank_nom = self.rtank0 * (1.0 + 0.08 * g[G_RSHEET]);

        // Oscillation frequency.
        let w0 = 1.0 / (ltank * ctank).sqrt();
        let f0 = w0 / std::f64::consts::TAU;

        // Effective tank parallel resistance at resonance from an MNA
        // impedance solve (loss resistor ∥ pair output conductance).
        let mut nl = Netlist::new();
        let n = nl.add_node();
        nl.add_inductor(n, nl.ground(), ltank)?;
        nl.add_capacitor(n, nl.ground(), ctank)?;
        nl.add_resistor(n, nl.ground(), rtank_nom)?;
        nl.add_resistor(n, nl.ground(), 2.0 / pair.gds.max(1e-9))?;
        let fac = AcSolver::new(&nl)?.factor(f0)?;
        let rp = fac.solve_injection(n)?.voltage(n).abs();
        let q = rp / (w0 * ltank);

        // Startup safety margin and amplitude (current-limited regime).
        let gm_loop = 0.5 * pair.gm;
        let amp = (2.0 / std::f64::consts::PI) * bias * rp * (1.0 - 1.0 / (gm_loop * rp).max(1.2));
        let p_sig = amp * amp / (2.0 * rp);

        // Leeson phase noise at the offset, with the device excess-noise
        // factor from the pair's thermal noise against the tank loss.
        let gamma_scale = 1.0 + 0.05 * g[G_GAMMA];
        let four_kt = crate::FOUR_K_T;
        let device_factor =
            1.0 + (pair.thermal_noise_psd * gamma_scale + pair.flicker_noise_psd) * rp / four_kt;
        let leeson =
            (2.0 * four_kt / 4.0) * device_factor / p_sig * (f0 / (2.0 * q * self.offset)).powi(2);
        let pn_dbchz = 10.0 * leeson.max(1e-30).log10();

        Ok(vec![f0 / 1e9, pn_dbchz, amp])
    }

    fn cost_model(&self) -> SimCostModel {
        // Periodic-steady-state analyses are the costliest of the three
        // testbenches; charge accordingly (virtual, see DESIGN.md).
        SimCostModel::new(90.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbmf_stats::seeded_rng;

    #[test]
    fn dimensions_and_nominal_metrics() {
        let vco = Vco::new();
        assert_eq!(vco.num_states(), 32);
        assert_eq!(vco.num_variables(), 1008);
        let x = vec![0.0; 1008];
        for state in [0, 15, 31] {
            let m = vco.simulate(state, &x).unwrap();
            assert!(m[0] > 1.0 && m[0] < 5.0, "freq {} GHz at {state}", m[0]);
            assert!(
                m[1] < -80.0 && m[1] > -160.0,
                "PN {} dBc/Hz at {state}",
                m[1]
            );
            assert!(m[2] > 0.05 && m[2] < 3.0, "amp {} V at {state}", m[2]);
        }
    }

    #[test]
    fn frequency_decreases_with_bank_state() {
        let vco = Vco::new();
        let x = vec![0.0; 1008];
        let f_low = vco.simulate(0, &x).unwrap()[0];
        let f_high = vco.simulate(31, &x).unwrap()[0];
        assert!(f_high < f_low, "more capacitance, lower frequency");
        // A useful tuning range: at least 10%.
        assert!((f_low - f_high) / f_low > 0.10, "{f_low} -> {f_high}");
    }

    #[test]
    fn capacitance_variation_shifts_frequency() {
        let vco = Vco::new();
        let base = vco.simulate(10, &vec![0.0; 1008]).unwrap()[0];
        let mut x = vec![0.0; 1008];
        x[crate::lna::G_CPASSIVE] = 3.0;
        let shifted = vco.simulate(10, &x).unwrap()[0];
        assert!(shifted < base, "more C, lower f: {base} -> {shifted}");
        let rel = (base - shifted) / base;
        assert!(rel > 0.01 && rel < 0.2, "plausible 3σ shift: {rel}");
    }

    #[test]
    fn phase_noise_responds_to_tank_q() {
        let vco = Vco::new();
        let base = vco.simulate(10, &vec![0.0; 1008]).unwrap()[1];
        let mut x = vec![0.0; 1008];
        x[crate::lna::G_RSHEET] = -3.0; // lossier tank corner
        let worse = vco.simulate(10, &x).unwrap()[1];
        assert!(worse > base, "lower Q, worse PN: {base} -> {worse}");
    }

    #[test]
    fn random_samples_finite_and_deterministic() {
        let vco = Vco::new();
        let mut rng = seeded_rng(150);
        for _ in 0..5 {
            let x = vco.variation_model().sample(&mut rng);
            let a = vco.simulate(7, &x).unwrap();
            assert!(a.iter().all(|v| v.is_finite()));
            assert_eq!(a, vco.simulate(7, &x).unwrap());
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let vco = Vco::new();
        assert!(vco.simulate(32, &[0.0; 1008]).is_err());
        assert!(vco.simulate(0, &[0.0; 7]).is_err());
    }
}
