use std::fmt;

use cbmf_linalg::LinalgError;

/// Error type for the circuit-simulation substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A netlist referenced a node that was never allocated.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of allocated nodes.
        num_nodes: usize,
    },
    /// An element value was non-physical (negative resistance, NaN, ...).
    BadElementValue {
        /// Description of the element and value.
        what: String,
    },
    /// The MNA system could not be solved (floating node, singular matrix).
    SolveFailed(LinalgError),
    /// A testbench was driven with inputs of the wrong shape.
    BadInput {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode { node, num_nodes } => {
                write!(f, "node {node} does not exist ({num_nodes} allocated)")
            }
            CircuitError::BadElementValue { what } => {
                write!(f, "bad element value: {what}")
            }
            CircuitError::SolveFailed(e) => write!(f, "mna solve failed: {e}"),
            CircuitError::BadInput { what } => write!(f, "bad input: {what}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::SolveFailed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CircuitError {
    fn from(e: LinalgError) -> Self {
        CircuitError::SolveFailed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CircuitError::UnknownNode {
            node: 7,
            num_nodes: 3,
        };
        assert!(e.to_string().contains("node 7"));
        let e = CircuitError::BadElementValue {
            what: "resistor R1 = -5 ohms".to_string(),
        };
        assert!(e.to_string().contains("R1"));
        let e = CircuitError::from(LinalgError::Singular { pivot: 2 });
        assert!(e.to_string().contains("singular"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CircuitError>();
    }
}
