use crate::cost::SimCostModel;
use crate::error::CircuitError;
use crate::mna::AcSolver;
use crate::mosfet::{Mosfet, MosfetDeltas, SmallSignal};
use crate::netlist::Netlist;
use crate::noise::{NoiseAnalysis, NoiseContribution};
use crate::testbench::Testbench;
use crate::variation::{DeviceClass, VariationModel};
use crate::FOUR_K_T;

/// Number of inter-die (global) variation variables.
const INTER_DIE: usize = 16;
/// Mismatch parameters per unit finger for the LNA (MosfetDeltas prefix).
const PARAMS_PER_FINGER: usize = 8;
/// Unit fingers of the input device M1.
const M1_FINGERS: usize = 64;
/// Unit fingers of the cascode device M2.
const M2_FINGERS: usize = 48;
/// Unit fingers of the bias current mirror.
const MIRROR_FINGERS: usize = 44;

// Indices into the inter-die block (shared with the mixer testbench).
pub(crate) const G_VTHN: usize = 0;
pub(crate) const G_BETAN: usize = 2;
pub(crate) const G_LEFF: usize = 4;
pub(crate) const G_WEFF: usize = 5;
pub(crate) const G_CAP: usize = 6;
pub(crate) const G_RSHEET: usize = 7;
pub(crate) const G_CPASSIVE: usize = 8;
pub(crate) const G_IND: usize = 9;
pub(crate) const G_THETAN: usize = 10;
pub(crate) const G_KF: usize = 12;
pub(crate) const G_GAMMA: usize = 13;
pub(crate) const G_BIAS: usize = 14;
pub(crate) const G_PACKAGE: usize = 15;
// G1 (vthp), G3 (betap) and G11 (thetap) are PMOS globals: present in the
// variation space (the PDK models them) but with zero effect on these
// NMOS-only RF paths — genuinely irrelevant regressors for the sparse model.

/// Inter-die coupling weights, expressed in units of the local per-finger
/// sigma (inter-die components are several times larger than single-finger
/// mismatch and hit all fingers coherently).
#[derive(Debug, Clone, Copy)]
pub(crate) struct InterDieWeights {
    pub vth: f64,
    pub beta: f64,
    pub leff: f64,
    pub weff: f64,
    pub cap: f64,
    pub theta: f64,
    pub kf: f64,
}

impl InterDieWeights {
    pub(crate) fn nmos() -> Self {
        InterDieWeights {
            vth: 2.0,
            beta: 1.5,
            leff: 1.2,
            weff: 1.0,
            cap: 1.5,
            theta: 1.0,
            kf: 1.0,
        }
    }
}

/// Combines one finger's local mismatch parameters with the shared
/// inter-die shifts into the deltas the device model consumes.
pub(crate) fn combined_deltas(
    local: &[f64],
    globals: &[f64],
    w: &InterDieWeights,
) -> Result<MosfetDeltas, CircuitError> {
    let mut d = MosfetDeltas::from_slice(local)?;
    d.dvth += w.vth * globals[G_VTHN];
    d.dbeta += w.beta * globals[G_BETAN];
    d.dleff += w.leff * globals[G_LEFF];
    d.dweff += w.weff * globals[G_WEFF];
    d.dcap += w.cap * globals[G_CAP];
    d.dtheta += w.theta * globals[G_THETAN];
    d.dkf += w.kf * globals[G_KF];
    Ok(d)
}

/// Aggregates the small-signal parameters of a multi-finger transistor:
/// parallel fingers sum currents, so every parameter adds.
pub(crate) fn aggregate_fingers(
    unit: &Mosfet,
    model: &VariationModel,
    x: &[f64],
    class: usize,
    unit_bias: f64,
    freq: f64,
    w: &InterDieWeights,
) -> Result<SmallSignal, CircuitError> {
    let globals = model.inter_die(x);
    let fingers = model.classes()[class].fingers;
    let mut agg = SmallSignal {
        gm: 0.0,
        gds: 0.0,
        cgs: 0.0,
        cgd: 0.0,
        gm2: 0.0,
        gm3: 0.0,
        thermal_noise_psd: 0.0,
        flicker_noise_psd: 0.0,
    };
    for f in 0..fingers {
        let local = model.finger_params(x, class, f);
        let d = combined_deltas(local, globals, w)?;
        let ss = unit.small_signal(unit_bias, &d, freq);
        agg.gm += ss.gm;
        agg.gds += ss.gds;
        agg.cgs += ss.cgs;
        agg.cgd += ss.cgd;
        agg.gm2 += ss.gm2;
        agg.gm3 += ss.gm3;
        agg.thermal_noise_psd += ss.thermal_noise_psd;
        agg.flicker_noise_psd += ss.flicker_noise_psd;
    }
    Ok(agg)
}

/// Relative bias-current error contributed by a mismatched current mirror:
/// the mean over mirror fingers of a VTH/β-driven per-finger error.
pub(crate) fn mirror_bias_error(model: &VariationModel, x: &[f64], class: usize) -> f64 {
    let c = &model.classes()[class];
    let mut acc = 0.0;
    for f in 0..c.fingers {
        let p = model.finger_params(x, class, f);
        // ΔI/I per finger ≈ 1.0%·ΔVTHσ + 0.8%·Δβσ.
        acc += 0.010 * p[0] + 0.008 * p[1];
    }
    acc / c.fingers as f64
}

/// The tunable 2.4 GHz low-noise amplifier of the paper's Section 4.1.
///
/// Topology: inductively degenerated cascode NMOS LNA with an LC tank load.
/// The input device (M1) and cascode (M2) are arrays of unit fingers, each
/// carrying its own mismatch variables; a tunable current mirror sets the
/// bias and provides the 32 knob states (the paper: "32 different knob
/// configurations controlled by a tunable current source").
///
/// Variation space: 16 inter-die variables + (64 + 48 + 44) fingers × 8
/// mismatch parameters = **1264** variables, matching the paper.
///
/// Metrics per (state, sample): noise figure `nf_db`, voltage gain `vg_db`,
/// third-order input intercept `iip3_dbm`.
///
/// # Examples
///
/// ```
/// use cbmf_circuits::{Lna, Testbench};
///
/// # fn main() -> Result<(), cbmf_circuits::CircuitError> {
/// let lna = Lna::new();
/// let x = vec![0.0; lna.num_variables()];
/// let poi = lna.simulate(16, &x)?;
/// let (nf, vg, iip3) = (poi[0], poi[1], poi[2]);
/// assert!(nf > 0.5 && nf < 6.0, "plausible NF, got {nf} dB");
/// assert!(vg > 10.0 && vg < 35.0, "plausible gain, got {vg} dB");
/// assert!(iip3 > -25.0 && iip3 < 15.0, "plausible IIP3, got {iip3} dBm");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lna {
    variation: VariationModel,
    unit_m1: Mosfet,
    unit_m2: Mosfet,
    /// Analysis frequency (2.4 GHz).
    freq: f64,
    /// Nominal source resistance (50 Ω).
    rs: f64,
    /// Nominal total bias current at the center state, amperes.
    bias0: f64,
    /// External gate–source matching capacitor, farads.
    cex: f64,
    /// Degeneration inductor, henries.
    ls: f64,
    /// Gate inductor (tuned at construction for input resonance), henries.
    lg: f64,
    /// Load tank: inductor, capacitor, parallel loss resistor.
    ld: f64,
    cload: f64,
    rtank: f64,
}

impl Lna {
    /// Builds the LNA with the paper's dimensions (32 states, 1264
    /// variables) and element values tuned for 2.4 GHz operation.
    pub fn new() -> Self {
        let variation = VariationModel::new(
            INTER_DIE,
            vec![
                DeviceClass::new("M1 input", M1_FINGERS, PARAMS_PER_FINGER),
                DeviceClass::new("M2 cascode", M2_FINGERS, PARAMS_PER_FINGER),
                DeviceClass::new("bias mirror", MIRROR_FINGERS, PARAMS_PER_FINGER),
            ],
        );
        debug_assert_eq!(variation.dim(), 1264);
        let freq = 2.4e9;
        let w0 = std::f64::consts::TAU * freq;
        let unit_m1 = Mosfet::rf_nmos(M1_FINGERS, 0.0);
        let unit_m2 = Mosfet::rf_nmos(M2_FINGERS, 0.0);
        let bias0 = 4.0e-3;
        let cex = 300e-15;

        // Nominal M1 aggregate at the center state, for matching-element
        // selection only (runtime uses per-sample values).
        let nominal =
            unit_m1.small_signal(bias0 / M1_FINGERS as f64, &MosfetDeltas::default(), freq);
        let cgs_total = nominal.cgs * M1_FINGERS as f64 + cex;
        let gm_total = nominal.gm * M1_FINGERS as f64;
        // Source degeneration for Re(Zin) = 50 Ω: Ls = Rs·Cgs/gm.
        let ls = 50.0 * cgs_total / gm_total;
        // Gate inductor resonates the series input loop at f0.
        let lg = (1.0 / (w0 * w0 * cgs_total) - ls).max(0.2e-9);
        // Load tank resonant at f0.
        let cload = 500e-15;
        let ld = 1.0 / (w0 * w0 * cload);
        let rtank = 600.0;

        Lna {
            variation,
            unit_m1,
            unit_m2,
            freq,
            rs: 50.0,
            bias0,
            cex,
            ls,
            lg,
            ld,
            cload,
            rtank,
        }
    }

    /// The variation-space layout (for interpreting fitted coefficients).
    pub fn variation_model(&self) -> &VariationModel {
        &self.variation
    }

    /// Total bias current of knob state `k` (before variation), amperes.
    ///
    /// # Panics
    ///
    /// Panics if `state >= 32`.
    pub fn state_bias(&self, state: usize) -> f64 {
        assert!(state < 32, "lna has 32 states");
        self.bias0 * (0.55 + 0.03 * state as f64)
    }
}

impl Default for Lna {
    fn default() -> Self {
        Lna::new()
    }
}

impl Testbench for Lna {
    fn name(&self) -> &str {
        "lna"
    }

    fn num_states(&self) -> usize {
        32
    }

    fn num_variables(&self) -> usize {
        self.variation.dim()
    }

    fn metric_names(&self) -> &[&'static str] {
        &["nf_db", "vg_db", "iip3_dbm"]
    }

    fn simulate(&self, state: usize, x: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if state >= self.num_states() {
            return Err(CircuitError::BadInput {
                what: format!("state {state} out of range (32 states)"),
            });
        }
        self.variation.check(x)?;
        let g = self.variation.inter_die(x);
        let w = InterDieWeights::nmos();

        // --- Bias path: knob state, inter-die supply/bias, mirror mismatch.
        let mirror_err = mirror_bias_error(&self.variation, x, 2);
        let bias = self.state_bias(state) * (1.0 + 0.04 * g[G_BIAS] + mirror_err);

        // --- Device aggregates under this sample's variations.
        let m1 = aggregate_fingers(
            &self.unit_m1,
            &self.variation,
            x,
            0,
            bias / M1_FINGERS as f64,
            self.freq,
            &w,
        )?;
        let m2 = aggregate_fingers(
            &self.unit_m2,
            &self.variation,
            x,
            1,
            bias / M2_FINGERS as f64,
            self.freq,
            &w,
        )?;

        // --- Passive values under inter-die variation.
        let rs = self.rs * (1.0 + 0.02 * g[G_PACKAGE]);
        let rtank = self.rtank * (1.0 + 0.08 * g[G_RSHEET]);
        let cex = self.cex * (1.0 + 0.05 * g[G_CPASSIVE]);
        let cload = self.cload * (1.0 + 0.05 * g[G_CPASSIVE]);
        let ind_scale = 1.0 + 0.03 * g[G_IND];
        let (ls, lg, ld) = (
            self.ls * ind_scale,
            self.lg * ind_scale,
            self.ld * ind_scale,
        );
        let gamma_scale = 1.0 + 0.05 * g[G_GAMMA];

        // --- Build and solve the small-signal netlist at 2.4 GHz.
        let mut nl = Netlist::new();
        let n_in = nl.add_node();
        let n_lg = nl.add_node();
        let n_gate = nl.add_node();
        let n_src = nl.add_node();
        let n_casc = nl.add_node();
        let n_out = nl.add_node();
        let gnd = nl.ground();

        // Norton source: 1 V Thevenin behind Rs.
        let v_src = 1.0;
        nl.add_current_source(gnd, n_in, v_src / rs)?;
        nl.add_resistor(n_in, gnd, rs)?;
        // Gate inductor with its series loss (Q ≈ 12 on-chip spiral); the
        // loss resistance tracks the metal sheet-resistance corner and is
        // the dominant contributor to a practical LNA's noise figure.
        let r_lg = std::f64::consts::TAU * self.freq * lg / 12.0 * (1.0 + 0.06 * g[G_RSHEET]);
        nl.add_inductor(n_in, n_lg, lg)?;
        nl.add_resistor(n_lg, n_gate, r_lg)?;
        nl.add_capacitor(n_gate, n_src, m1.cgs + cex)?;
        nl.add_inductor(n_src, gnd, ls)?;
        // M1: drain = casc, source = src, gate control.
        nl.add_vccs(n_casc, n_src, n_gate, n_src, m1.gm)?;
        nl.add_resistor(n_casc, n_src, 1.0 / m1.gds)?;
        nl.add_capacitor(n_gate, n_casc, m1.cgd)?;
        // M2 cascode: gate AC ground, source = casc, drain = out.
        nl.add_vccs(n_out, n_casc, gnd, n_casc, m2.gm)?;
        nl.add_resistor(n_out, n_casc, 1.0 / m2.gds)?;
        nl.add_capacitor(n_casc, gnd, m2.cgs)?;
        nl.add_capacitor(n_out, gnd, m2.cgd + cload)?;
        // Load tank.
        nl.add_inductor(n_out, gnd, ld)?;
        nl.add_resistor(n_out, gnd, rtank)?;

        let solver = AcSolver::new(&nl)?;
        let fac = solver.factor(self.freq)?;
        let sol = fac.solve_sources()?;
        let vout = sol.voltage(n_out).abs();
        let vgs = sol.differential(n_gate, n_src).abs();
        let vg_db = 20.0 * (vout / v_src).max(1e-12).log10();

        // --- Noise figure via per-source output noise.
        let mut na = NoiseAnalysis::new();
        let src_idx = na.add(NoiseContribution::to_node("Rs", FOUR_K_T / rs, n_in));
        na.add(NoiseContribution::between(
            "Lg loss",
            FOUR_K_T / r_lg,
            n_lg,
            n_gate,
        ));
        na.add(NoiseContribution::between(
            "M1 channel",
            m1.thermal_noise_psd * gamma_scale + m1.flicker_noise_psd,
            n_casc,
            n_src,
        ));
        na.add(NoiseContribution::between(
            "M2 channel",
            m2.thermal_noise_psd * gamma_scale + m2.flicker_noise_psd,
            n_out,
            n_casc,
        ));
        na.add(NoiseContribution::to_node(
            "tank loss",
            FOUR_K_T / rtank,
            n_out,
        ));
        let (_total, f) = na.noise_factor(&fac, n_out, None, src_idx)?;
        let nf_db = 10.0 * f.log10();

        // --- IIP3 from the aggregate input-stage nonlinearity, improved by
        // the series (inductive-degeneration) feedback loop gain.
        // Input-referred third-order intercept voltage (gate drive):
        //   A² = (4/3)·|gm/gm3| · (1 + T)²  with loop gain T ≈ gm·ω·Ls.
        let loop_gain = m1.gm * std::f64::consts::TAU * self.freq * ls;
        let a_sq = (4.0 / 3.0) * (m1.gm / m1.gm3.abs().max(1e-12)) * (1.0 + loop_gain).powi(2);
        // Refer from gate drive back to the source through the passive input
        // network gain |vgs / vsrc|.
        let input_gain = (vgs / v_src).max(1e-9);
        let a_src_sq = a_sq / (input_gain * input_gain);
        // Available power at the 50 Ω source: P = A²/(8·Rs), in dBm.
        let iip3_dbm = 10.0 * (a_src_sq / (8.0 * rs) * 1000.0).log10();

        Ok(vec![nf_db, vg_db, iip3_dbm])
    }

    fn cost_model(&self) -> SimCostModel {
        SimCostModel::lna_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbmf_stats::seeded_rng;

    #[test]
    fn dimensions_match_the_paper() {
        let lna = Lna::new();
        assert_eq!(lna.num_states(), 32);
        assert_eq!(lna.num_variables(), 1264);
        assert_eq!(lna.metric_names().len(), 3);
    }

    #[test]
    fn nominal_metrics_are_physical() {
        let lna = Lna::new();
        let x = vec![0.0; 1264];
        for state in [0, 15, 31] {
            let m = lna.simulate(state, &x).unwrap();
            assert!(
                m[0] > 0.3 && m[0] < 8.0,
                "NF = {} dB at state {state}",
                m[0]
            );
            assert!(
                m[1] > 5.0 && m[1] < 40.0,
                "VG = {} dB at state {state}",
                m[1]
            );
            assert!(
                m[2] > -30.0 && m[2] < 20.0,
                "IIP3 = {} dBm at state {state}",
                m[2]
            );
        }
    }

    #[test]
    fn gain_increases_with_bias_state() {
        let lna = Lna::new();
        let x = vec![0.0; 1264];
        let low = lna.simulate(0, &x).unwrap()[1];
        let high = lna.simulate(31, &x).unwrap()[1];
        assert!(high > low, "more bias, more gm, more gain: {low} vs {high}");
    }

    #[test]
    fn noise_figure_improves_with_bias() {
        let lna = Lna::new();
        let x = vec![0.0; 1264];
        let low = lna.simulate(0, &x).unwrap()[0];
        let high = lna.simulate(31, &x).unwrap()[0];
        assert!(high < low, "more gm lowers NF: {low} vs {high}");
    }

    #[test]
    fn metrics_respond_to_global_variation() {
        let lna = Lna::new();
        let base = lna.simulate(10, &vec![0.0; 1264]).unwrap();
        let mut x = vec![0.0; 1264];
        x[G_VTHN] = 3.0;
        let shifted = lna.simulate(10, &x).unwrap();
        for (b, s) in base.iter().zip(&shifted) {
            assert!((b - s).abs() > 1e-4, "global VTH must move every metric");
        }
    }

    #[test]
    fn pmos_globals_are_irrelevant() {
        let lna = Lna::new();
        let base = lna.simulate(10, &vec![0.0; 1264]).unwrap();
        let mut x = vec![0.0; 1264];
        x[1] = 4.0; // vthp
        x[3] = 4.0; // betap
        x[11] = 4.0; // thetap
        let shifted = lna.simulate(10, &x).unwrap();
        assert_eq!(base, shifted, "pmos globals must not touch the nmos lna");
    }

    #[test]
    fn single_finger_mismatch_is_weak_but_nonzero() {
        let lna = Lna::new();
        let base = lna.simulate(10, &vec![0.0; 1264]).unwrap();
        let mut x = vec![0.0; 1264];
        let idx = lna.variation_model().param_index(0, 7, 0); // M1 finger 7 dvth
        x[idx] = 3.0;
        let shifted = lna.simulate(10, &x).unwrap();
        let rel = ((base[1] - shifted[1]) / base[1]).abs();
        assert!(rel > 0.0, "finger mismatch must have some effect");
        assert!(rel < 0.01, "one finger of 64 must be weak: {rel}");
        // Global VTH must dominate a single-finger shift.
        let mut xg = vec![0.0; 1264];
        xg[G_VTHN] = 3.0;
        let global = lna.simulate(10, &xg).unwrap();
        let rel_g = ((base[1] - global[1]) / base[1]).abs();
        assert!(rel_g > 10.0 * rel, "inter-die beats single-finger mismatch");
    }

    #[test]
    fn simulation_is_deterministic_and_smooth() {
        let lna = Lna::new();
        let mut rng = seeded_rng(3);
        let x = lna.variation_model().sample(&mut rng);
        let a = lna.simulate(5, &x).unwrap();
        let b = lna.simulate(5, &x).unwrap();
        assert_eq!(a, b);
        // Small perturbation, small effect (smoothness).
        let mut x2 = x.clone();
        x2[0] += 1e-5;
        let c = lna.simulate(5, &x2).unwrap();
        for (ai, ci) in a.iter().zip(&c) {
            assert!((ai - ci).abs() < 1e-2);
        }
    }

    #[test]
    fn random_samples_stay_finite_and_physical() {
        let lna = Lna::new();
        let mut rng = seeded_rng(4);
        for state in [0usize, 31] {
            for _ in 0..5 {
                let x = lna.variation_model().sample(&mut rng);
                let m = lna.simulate(state, &x).unwrap();
                assert!(m.iter().all(|v| v.is_finite()), "{m:?}");
            }
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let lna = Lna::new();
        assert!(lna.simulate(32, &vec![0.0; 1264]).is_err());
        assert!(lna.simulate(0, &[0.0; 10]).is_err());
    }

    #[test]
    fn cost_model_matches_table1() {
        let lna = Lna::new();
        assert!((lna.cost_model().charge(1120).hours() - 2.72).abs() < 1e-9);
    }
}
