use serde::{Deserialize, Serialize};

use crate::error::CircuitError;

/// A circuit node handle returned by [`Netlist::add_node`].
///
/// Node 0 is always ground; [`Netlist::ground`] returns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of the node (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// True if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A linear small-signal circuit element.
///
/// Voltage sources are intentionally absent: every excitation in the RF
/// testbenches is expressed as a Norton equivalent (current source in
/// parallel with its source resistance), which keeps the MNA system purely
/// nodal and always well-posed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive and finite).
        ohms: f64,
    },
    /// Capacitor between two nodes.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be non-negative and finite).
        farads: f64,
    },
    /// Inductor between two nodes (modeled as admittance `1/(jωL)`).
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries (must be positive and finite).
        henries: f64,
    },
    /// Voltage-controlled current source: a current `gm · (V(cp) − V(cn))`
    /// flows from `out_p` to `out_n` (i.e. out of `out_p`, into `out_n`).
    Vccs {
        /// Node current leaves.
        out_p: NodeId,
        /// Node current enters.
        out_n: NodeId,
        /// Positive control node.
        ctrl_p: NodeId,
        /// Negative control node.
        ctrl_n: NodeId,
        /// Transconductance in siemens (any finite value).
        gm: f64,
    },
    /// Independent small-signal current source of 1 A-equivalent magnitude
    /// scaled by `amps`, flowing from `from` into `to`.
    CurrentSource {
        /// Node the current leaves.
        from: NodeId,
        /// Node the current enters.
        to: NodeId,
        /// Source magnitude in amperes (phasor, real).
        amps: f64,
    },
}

/// A small-signal netlist: a set of nodes plus linear elements.
///
/// # Examples
///
/// Build a simple RC low-pass driven by a Norton source and check its
/// -3 dB behaviour via the solver:
///
/// ```
/// use cbmf_circuits::{AcSolver, Netlist};
///
/// # fn main() -> Result<(), cbmf_circuits::CircuitError> {
/// let mut nl = Netlist::new();
/// let inp = nl.add_node();
/// nl.add_resistor(inp, nl.ground(), 1_000.0)?;
/// nl.add_capacitor(inp, nl.ground(), 1e-9)?;
/// nl.add_current_source(nl.ground(), inp, 1e-3)?;
/// // At DC-ish frequency the node sits at I·R = 1 V.
/// let sol = AcSolver::new(&nl)?.solve(1.0)?;
/// assert!((sol.voltage(inp).abs() - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    num_nodes: usize,
    elements: Vec<Element>,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        Netlist {
            num_nodes: 1,
            elements: Vec::new(),
        }
    }

    /// The ground node (node 0, the MNA reference).
    pub fn ground(&self) -> NodeId {
        NodeId(0)
    }

    /// Allocates a new node and returns its handle.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The elements added so far.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    fn check_node(&self, n: NodeId) -> Result<(), CircuitError> {
        if n.0 >= self.num_nodes {
            return Err(CircuitError::UnknownNode {
                node: n.0,
                num_nodes: self.num_nodes,
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] if a node was not allocated here.
    /// * [`CircuitError::BadElementValue`] if `ohms` is not positive/finite.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(CircuitError::BadElementValue {
                what: format!("resistor must have positive finite ohms, got {ohms}"),
            });
        }
        self.elements.push(Element::Resistor { a, b, ohms });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Same classes as [`Netlist::add_resistor`]; `farads` must be
    /// non-negative and finite.
    pub fn add_capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(farads.is_finite() && farads >= 0.0) {
            return Err(CircuitError::BadElementValue {
                what: format!("capacitor must have non-negative finite farads, got {farads}"),
            });
        }
        self.elements.push(Element::Capacitor { a, b, farads });
        Ok(())
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Same classes as [`Netlist::add_resistor`]; `henries` must be positive
    /// and finite.
    pub fn add_inductor(&mut self, a: NodeId, b: NodeId, henries: f64) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(henries.is_finite() && henries > 0.0) {
            return Err(CircuitError::BadElementValue {
                what: format!("inductor must have positive finite henries, got {henries}"),
            });
        }
        self.elements.push(Element::Inductor { a, b, henries });
        Ok(())
    }

    /// Adds a voltage-controlled current source (the small-signal
    /// transconductance of a transistor).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] if a node was not allocated here.
    /// * [`CircuitError::BadElementValue`] if `gm` is not finite.
    pub fn add_vccs(
        &mut self,
        out_p: NodeId,
        out_n: NodeId,
        ctrl_p: NodeId,
        ctrl_n: NodeId,
        gm: f64,
    ) -> Result<(), CircuitError> {
        self.check_node(out_p)?;
        self.check_node(out_n)?;
        self.check_node(ctrl_p)?;
        self.check_node(ctrl_n)?;
        if !gm.is_finite() {
            return Err(CircuitError::BadElementValue {
                what: format!("vccs gm must be finite, got {gm}"),
            });
        }
        self.elements.push(Element::Vccs {
            out_p,
            out_n,
            ctrl_p,
            ctrl_n,
            gm,
        });
        Ok(())
    }

    /// Adds an independent current source (the excitation).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] if a node was not allocated here.
    /// * [`CircuitError::BadElementValue`] if `amps` is not finite.
    pub fn add_current_source(
        &mut self,
        from: NodeId,
        to: NodeId,
        amps: f64,
    ) -> Result<(), CircuitError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if !amps.is_finite() {
            return Err(CircuitError::BadElementValue {
                what: format!("current source amps must be finite, got {amps}"),
            });
        }
        self.elements
            .push(Element::CurrentSource { from, to, amps });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_exists_from_the_start() {
        let nl = Netlist::new();
        assert_eq!(nl.num_nodes(), 1);
        assert!(nl.ground().is_ground());
        assert_eq!(nl.ground().index(), 0);
    }

    #[test]
    fn nodes_are_sequential() {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        let b = nl.add_node();
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(nl.num_nodes(), 3);
    }

    #[test]
    fn elements_accumulate() {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        nl.add_resistor(a, nl.ground(), 50.0).unwrap();
        nl.add_capacitor(a, nl.ground(), 1e-12).unwrap();
        nl.add_inductor(a, nl.ground(), 1e-9).unwrap();
        nl.add_vccs(nl.ground(), a, a, nl.ground(), 0.01).unwrap();
        nl.add_current_source(nl.ground(), a, 1.0).unwrap();
        assert_eq!(nl.elements().len(), 5);
    }

    #[test]
    fn foreign_nodes_rejected() {
        let mut nl = Netlist::new();
        let bogus = NodeId(5);
        assert!(matches!(
            nl.add_resistor(bogus, NodeId(0), 1.0),
            Err(CircuitError::UnknownNode { node: 5, .. })
        ));
    }

    #[test]
    fn bad_values_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_node();
        let g = nl.ground();
        assert!(nl.add_resistor(a, g, 0.0).is_err());
        assert!(nl.add_resistor(a, g, -1.0).is_err());
        assert!(nl.add_resistor(a, g, f64::NAN).is_err());
        assert!(nl.add_capacitor(a, g, -1e-12).is_err());
        assert!(nl.add_inductor(a, g, 0.0).is_err());
        assert!(nl.add_vccs(a, g, a, g, f64::INFINITY).is_err());
        assert!(nl.add_current_source(a, g, f64::NAN).is_err());
        // Zero capacitance is allowed (open circuit).
        assert!(nl.add_capacitor(a, g, 0.0).is_ok());
    }
}
