use serde::{Deserialize, Serialize};

use crate::error::CircuitError;
use crate::FOUR_K_T;

/// Per-device process-variation deltas, in *standardized* units.
///
/// Each field is the value of one standard-normal variation variable; the
/// device model internally scales it by the corresponding physical sigma
/// (Pelgrom-style `σ ∝ 1/√(WL)` for the mismatch components). The fields
/// mirror the dominant 32 nm SOI mismatch mechanisms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MosfetDeltas {
    /// Threshold-voltage mismatch (standardized).
    pub dvth: f64,
    /// Current-factor (β = μCox·W/L) mismatch (standardized).
    pub dbeta: f64,
    /// Effective-length variation (standardized).
    pub dleff: f64,
    /// Effective-width variation (standardized).
    pub dweff: f64,
    /// Output-conductance variation (standardized).
    pub dgds: f64,
    /// Gate-oxide / overlap capacitance variation (standardized).
    pub dcap: f64,
    /// Mobility-degradation (θ) variation (standardized).
    pub dtheta: f64,
    /// Flicker-noise-coefficient variation (standardized).
    pub dkf: f64,
    /// Body/back-gate effect variation (standardized; SOI back-interface).
    pub dbody: f64,
}

impl MosfetDeltas {
    /// Builds deltas from a parameter slice laid out in field order
    /// (`dvth, dbeta, dleff, dweff, dgds, dcap, dtheta, dkf, dbody`),
    /// reading only the first `params.len()` fields (the rest stay zero).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BadInput`] if more than 9 parameters are
    /// supplied.
    pub fn from_slice(params: &[f64]) -> Result<Self, CircuitError> {
        if params.len() > 9 {
            return Err(CircuitError::BadInput {
                what: format!(
                    "a mosfet has at most 9 variation params, got {}",
                    params.len()
                ),
            });
        }
        let mut d = MosfetDeltas::default();
        let fields: [&mut f64; 9] = [
            &mut d.dvth,
            &mut d.dbeta,
            &mut d.dleff,
            &mut d.dweff,
            &mut d.dgds,
            &mut d.dcap,
            &mut d.dtheta,
            &mut d.dkf,
            &mut d.dbody,
        ];
        for (f, &p) in fields.into_iter().zip(params) {
            *f = p;
        }
        Ok(d)
    }
}

/// Small-signal parameters of one (unit) MOSFET at its bias point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmallSignal {
    /// Transconductance `∂Id/∂Vgs` in siemens.
    pub gm: f64,
    /// Output conductance `∂Id/∂Vds` in siemens.
    pub gds: f64,
    /// Gate–source capacitance in farads.
    pub cgs: f64,
    /// Gate–drain capacitance in farads.
    pub cgd: f64,
    /// Second-order transconductance `∂²Id/∂Vgs²` in A/V².
    pub gm2: f64,
    /// Third-order transconductance `∂³Id/∂Vgs³` in A/V³.
    pub gm3: f64,
    /// Drain-current thermal-noise PSD `4kTγ·gm` in A²/Hz.
    pub thermal_noise_psd: f64,
    /// Flicker-noise PSD at the analysis frequency in A²/Hz.
    pub flicker_noise_psd: f64,
}

impl SmallSignal {
    /// Total drain-current noise PSD (thermal + flicker) in A²/Hz.
    pub fn total_noise_psd(&self) -> f64 {
        self.thermal_noise_psd + self.flicker_noise_psd
    }
}

/// A behavioural unit MOSFET for the 32 nm-class testbenches.
///
/// The model is a mobility-degraded square law,
/// `Id = (β/2)·Vov² / (1 + θ·Vov)`, biased at a fixed drain current (the
/// circuits set bias with current mirrors, so `Id` is the independent
/// variable and `Vov` adjusts). Process variation enters through
/// [`MosfetDeltas`]: ΔVTH shifts `Vov` at fixed gate drive, Δβ rescales the
/// current factor, and so on. Derivatives `gm`, `gm2`, `gm3` come from the
/// same expression, so nonlinearity (IIP3, P1dB) responds to the identical
/// variation variables as gain and noise — exactly the cross-metric coupling
/// the paper's experiments rely on.
///
/// # Examples
///
/// ```
/// use cbmf_circuits::{Mosfet, MosfetDeltas};
///
/// let m = Mosfet::rf_nmos(32, 2.0e-3); // 32 unit fingers, 2 mA total
/// let ss = m.small_signal(200e-6, &MosfetDeltas::default(), 2.4e9);
/// assert!(ss.gm > 0.0 && ss.cgs > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    /// Unit-finger width in meters.
    pub width: f64,
    /// Channel length in meters.
    pub length: f64,
    /// Nominal current factor β = μCox·W/L of one unit finger, in A/V².
    pub beta0: f64,
    /// Nominal mobility-degradation factor θ in 1/V.
    pub theta0: f64,
    /// Nominal Early voltage in volts (sets gds = Id/Va).
    pub early_voltage: f64,
    /// Gate capacitance per unit area times W·L, in farads (Cgs base).
    pub cgs0: f64,
    /// Gate–drain overlap capacitance of one finger, in farads.
    pub cgd0: f64,
    /// Thermal-noise gamma (≈ 1.0–1.5 for short-channel).
    pub gamma: f64,
    /// Flicker-noise magnitude: PSD = kf·gm²/f at the unit finger, A²·Hz⁻¹·Hz.
    pub kf: f64,
    /// Local-mismatch sigmas (fractional, for one unit finger).
    pub sigma: MismatchSigma,
}

/// Fractional 1-σ mismatch magnitudes for one unit finger.
///
/// Values are representative of a 32 nm-class process for near-minimum
/// devices; Pelgrom scaling across finger sizes is folded into the
/// constructor choices rather than recomputed per device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MismatchSigma {
    /// σ(ΔVTH) in volts.
    pub vth: f64,
    /// σ(Δβ)/β fractional.
    pub beta: f64,
    /// σ(ΔL)/L fractional.
    pub leff: f64,
    /// σ(ΔW)/W fractional.
    pub weff: f64,
    /// σ(Δgds)/gds fractional.
    pub gds: f64,
    /// σ(ΔC)/C fractional.
    pub cap: f64,
    /// σ(Δθ)/θ fractional.
    pub theta: f64,
    /// σ(Δkf)/kf fractional.
    pub kf: f64,
    /// body-effect sigma in volts (adds to VTH shift).
    pub body: f64,
}

impl Default for MismatchSigma {
    fn default() -> Self {
        MismatchSigma {
            vth: 0.012,
            beta: 0.020,
            leff: 0.015,
            weff: 0.010,
            gds: 0.050,
            cap: 0.015,
            theta: 0.030,
            kf: 0.100,
            body: 0.004,
        }
    }
}

impl Mosfet {
    /// A representative RF NMOS unit finger for a 32 nm-class process,
    /// configured as `fingers` parallel units sharing `total_bias` amperes.
    ///
    /// The returned struct describes *one* unit finger biased at
    /// `total_bias / fingers`; callers iterate over fingers, apply each
    /// finger's own [`MosfetDeltas`], and sum the small-signal parameters.
    pub fn rf_nmos(fingers: usize, total_bias: f64) -> Self {
        let _ = (fingers, total_bias); // geometry is per-unit; bias passed per-call
        Mosfet {
            width: 2.0e-6,
            length: 32.0e-9,
            beta0: 2.4e-3,
            theta0: 0.9,
            early_voltage: 6.0,
            cgs0: 1.6e-15,
            cgd0: 0.5e-15,
            gamma: 1.2,
            kf: 2.0e-12,
            sigma: MismatchSigma::default(),
        }
    }

    /// A representative PMOS unit finger (lower mobility, higher flicker).
    pub fn rf_pmos(fingers: usize, total_bias: f64) -> Self {
        let _ = (fingers, total_bias);
        Mosfet {
            width: 2.0e-6,
            length: 32.0e-9,
            beta0: 1.0e-3,
            theta0: 1.1,
            early_voltage: 5.0,
            cgs0: 1.8e-15,
            cgd0: 0.6e-15,
            gamma: 1.1,
            kf: 6.0e-12,
            sigma: MismatchSigma::default(),
        }
    }

    /// Small-signal parameters of this unit finger at drain bias `id`
    /// (amperes) under variation `deltas`, with flicker noise evaluated at
    /// `freq_hz`.
    ///
    /// The bias current is held by the surrounding circuit (current-mirror
    /// biasing), so ΔVTH acts by shifting the overdrive that develops and Δβ
    /// by rescaling the current factor.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `id` or `freq_hz` is not positive.
    pub fn small_signal(&self, id: f64, deltas: &MosfetDeltas, freq_hz: f64) -> SmallSignal {
        debug_assert!(id > 0.0, "bias current must be positive");
        debug_assert!(freq_hz > 0.0, "frequency must be positive");
        let s = &self.sigma;
        // Effective geometry and current factor.
        let leff = self.length * (1.0 + s.leff * deltas.dleff);
        let weff = self.width * (1.0 + s.weff * deltas.dweff);
        let geom = (weff / self.width) * (self.length / leff);
        let beta = self.beta0 * geom * (1.0 + s.beta * deltas.dbeta);
        let theta = (self.theta0 * (1.0 + s.theta * deltas.dtheta)).max(1e-3);

        // Solve the overdrive that carries `id` through the degraded square
        // law: id = (β/2)·Vov²/(1+θVov)  =>  (β/2)Vov² − id·θ·Vov − id = 0.
        let a = 0.5 * beta;
        let b = -id * theta;
        let c = -id;
        let vov_nom = (-b + (b * b - 4.0 * a * c).sqrt()) / (2.0 * a);
        // VTH mismatch (plus SOI body effect) shifts the *applied* overdrive
        // around the bias point; to first order the mirror restores the
        // current but the transconductance moves. We model the residual as
        // an overdrive shift of (ΔVTH_effective · mirror_residual).
        let dvth_eff = s.vth * deltas.dvth + s.body * deltas.dbody;
        const MIRROR_RESIDUAL: f64 = 0.35; // fraction of ΔVTH not absorbed by the mirror loop
        let vov = (vov_nom - MIRROR_RESIDUAL * dvth_eff).max(0.02);

        // Degraded square-law derivatives at fixed Vgs (signal excursion).
        // id(v) = a·v²/(1+θv), v = Vov + vgs.
        let denom = 1.0 + theta * vov;
        let gm = a * vov * (2.0 + theta * vov) / (denom * denom);
        let gm2 = a * 2.0 / (denom * denom * denom);
        // Third derivative of a·v²/(1+θv):  −6aθ/(1+θv)⁴.
        let gm3 = -6.0 * a * theta / (denom * denom * denom * denom);

        let id_actual = a * vov * vov / denom;
        let gds = (id_actual / self.early_voltage) * (1.0 + s.gds * deltas.dgds);

        let cap_scale = (1.0 + s.cap * deltas.dcap) * (weff / self.width) * (leff / self.length);
        let cgs = self.cgs0 * cap_scale;
        let cgd = self.cgd0 * (1.0 + s.cap * deltas.dcap) * (weff / self.width);

        let thermal = FOUR_K_T * self.gamma * gm;
        let kf = self.kf * (1.0 + s.kf * deltas.dkf).max(0.0);
        let flicker = kf * gm * gm / freq_hz / (weff * leff * 1e12);

        SmallSignal {
            gm,
            gds,
            cgs,
            cgd,
            gm2,
            gm3,
            thermal_noise_psd: thermal,
            flicker_noise_psd: flicker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> SmallSignal {
        Mosfet::rf_nmos(1, 1.0e-4).small_signal(1.0e-4, &MosfetDeltas::default(), 2.4e9)
    }

    #[test]
    fn nominal_values_are_physical() {
        let ss = nominal();
        assert!(ss.gm > 1e-5 && ss.gm < 1e-1, "gm = {}", ss.gm);
        assert!(ss.gds > 0.0 && ss.gds < ss.gm);
        assert!(ss.cgs > 0.0 && ss.cgd > 0.0 && ss.cgd < ss.cgs);
        assert!(ss.gm3 < 0.0, "square law w/ degradation compresses");
        assert!(ss.thermal_noise_psd > 0.0);
        assert!(ss.flicker_noise_psd >= 0.0);
        // At RF, thermal noise dominates flicker.
        assert!(ss.thermal_noise_psd > ss.flicker_noise_psd);
    }

    #[test]
    fn gm_grows_with_bias_sublinearly() {
        let m = Mosfet::rf_nmos(1, 0.0);
        let d = MosfetDeltas::default();
        let g1 = m.small_signal(1.0e-4, &d, 2.4e9).gm;
        let g4 = m.small_signal(4.0e-4, &d, 2.4e9).gm;
        assert!(g4 > g1, "gm must increase with bias");
        assert!(g4 < 4.0 * g1, "gm grows sublinearly (sqrt-like) with Id");
    }

    #[test]
    fn vth_mismatch_moves_gm() {
        let m = Mosfet::rf_nmos(1, 0.0);
        let base = m.small_signal(1e-4, &MosfetDeltas::default(), 2.4e9).gm;
        let d = MosfetDeltas {
            dvth: 3.0, // +3σ
            ..Default::default()
        };
        let shifted = m.small_signal(1e-4, &d, 2.4e9).gm;
        let rel = (shifted - base).abs() / base;
        assert!(rel > 1e-3, "3σ VTH shift must move gm measurably: {rel}");
        assert!(rel < 0.2, "but not unphysically: {rel}");
    }

    #[test]
    fn beta_mismatch_moves_gm_in_expected_direction() {
        let m = Mosfet::rf_nmos(1, 0.0);
        let base = m.small_signal(1e-4, &MosfetDeltas::default(), 2.4e9).gm;
        let d = MosfetDeltas {
            dbeta: 2.0,
            ..Default::default()
        };
        let up = m.small_signal(1e-4, &d, 2.4e9).gm;
        // At fixed Id, higher β lowers Vov: gm = 2Id/Vov-ish rises.
        assert!(up > base);
    }

    #[test]
    fn smooth_in_each_delta() {
        // Central differences must be finite and small: the PoI smoothness
        // assumption of the whole modeling exercise.
        let m = Mosfet::rf_nmos(1, 0.0);
        let f = |d: &MosfetDeltas| m.small_signal(1e-4, d, 2.4e9).gm;
        let base = f(&MosfetDeltas::default());
        let eps = 1e-4;
        for field in 0..9 {
            let params_p: Vec<f64> = (0..9).map(|i| if i == field { eps } else { 0.0 }).collect();
            let params_m: Vec<f64> = (0..9)
                .map(|i| if i == field { -eps } else { 0.0 })
                .collect();
            let dp = MosfetDeltas::from_slice(&params_p).unwrap();
            let dm = MosfetDeltas::from_slice(&params_m).unwrap();
            let deriv = (f(&dp) - f(&dm)) / (2.0 * eps);
            assert!(deriv.is_finite(), "field {field}");
            assert!(deriv.abs() < base, "sensitivity bounded, field {field}");
        }
    }

    #[test]
    fn deltas_from_slice_layout() {
        let d = MosfetDeltas::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.dvth, 1.0);
        assert_eq!(d.dbeta, 2.0);
        assert_eq!(d.dleff, 3.0);
        assert_eq!(d.dweff, 0.0);
        let full = MosfetDeltas::from_slice(&[1.0; 9]).unwrap();
        assert_eq!(full.dbody, 1.0);
        assert!(MosfetDeltas::from_slice(&[0.0; 10]).is_err());
    }

    #[test]
    fn pmos_differs_from_nmos() {
        let n = Mosfet::rf_nmos(1, 0.0).small_signal(1e-4, &MosfetDeltas::default(), 2.4e9);
        let p = Mosfet::rf_pmos(1, 0.0).small_signal(1e-4, &MosfetDeltas::default(), 2.4e9);
        assert!(p.gm < n.gm, "lower mobility means lower gm at equal bias");
        assert!(p.flicker_noise_psd > n.flicker_noise_psd * 0.5);
    }
}
