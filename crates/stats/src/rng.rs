use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used throughout the reproduction.
///
/// A type alias keeps the choice in one place; every experiment takes an
/// explicit seed so that tables and figures regenerate bit-identically.
pub type SeededRng = StdRng;

/// Creates the project-standard RNG from a `u64` seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = cbmf_stats::seeded_rng(7);
/// let mut b = cbmf_stats::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SeededRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..10 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xa: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xa, xb);
    }
}
