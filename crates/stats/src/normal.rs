//! The standard normal distribution: sampling, pdf, cdf and quantile.
//!
//! The offline dependency set has `rand` but not `rand_distr`, so normal
//! sampling (Box–Muller) and the distribution functions are implemented
//! here. These feed the process-variation model (every ΔVTH / Δβ mismatch
//! variable is Gaussian) and the yield-estimation example.

use rand::Rng;

/// Draws one sample from `N(0, 1)` using the Box–Muller transform.
///
/// # Examples
///
/// ```
/// let mut rng = cbmf_stats::seeded_rng(1);
/// let x = cbmf_stats::normal::sample(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills `out` with i.i.d. `N(0, 1)` samples.
pub fn fill<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for x in out {
        *x = sample(rng);
    }
}

/// Draws `n` i.i.d. `N(0, 1)` samples into a new vector.
pub fn sample_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    fill(rng, &mut v);
    v
}

/// Probability density function of `N(0, 1)`.
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (std::f64::consts::TAU).sqrt()
}

/// Cumulative distribution function of `N(0, 1)`.
///
/// Uses the complementary-error-function identity with an Abramowitz &
/// Stegun 7.1.26-style rational approximation (|error| < 1.5e-7), which is
/// far tighter than anything the yield estimates need.
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function `erfc(x)` (|error| < 1.5e-7).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes' erfc approximation.
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Quantile (inverse CDF) of `N(0, 1)`.
///
/// Uses the Acklam rational approximation refined by one Newton step,
/// accurate to ~1e-12 over `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    // One Newton refinement against the high-accuracy cdf.
    let e = cdf(x) - p;
    x - e / pdf(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;
    use crate::seeded_rng;

    #[test]
    fn samples_have_standard_moments() {
        let mut rng = seeded_rng(7);
        let xs = sample_vec(&mut rng, 50_000);
        let m = describe::mean(&xs);
        let v = describe::variance(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "variance {v}");
    }

    #[test]
    fn pdf_known_values() {
        assert!((pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
        assert!((pdf(1.0) - 0.24197072451914337).abs() < 1e-12);
        assert!(pdf(10.0) < 1e-20);
    }

    #[test]
    fn cdf_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((cdf(1.0) - 0.8413447460685429).abs() < 1e-7);
        assert!((cdf(-1.0) - 0.15865525393145707).abs() < 1e-7);
        assert!((cdf(3.0) - 0.9986501019683699).abs() < 1e-7);
        assert!(cdf(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let c = cdf(x);
            assert!(c >= prev);
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = quantile(p);
            assert!((cdf(x) - p).abs() < 1e-7, "p = {p}, x = {x}");
        }
        assert!(quantile(0.5).abs() < 1e-6);
        assert!((quantile(0.975) - 1.959964).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0, 1)")]
    fn quantile_rejects_out_of_range() {
        quantile(1.0);
    }

    #[test]
    fn fill_matches_sample_stream() {
        let mut r1 = seeded_rng(3);
        let mut r2 = seeded_rng(3);
        let mut buf = [0.0; 5];
        fill(&mut r1, &mut buf);
        for b in buf {
            assert_eq!(b, sample(&mut r2));
        }
    }
}
