//! Modeling-error metrics used by the paper's figures and tables.
//!
//! The paper reports a single "modeling error (%)" per performance metric,
//! aggregated over all K states of the tunable circuit. We use the
//! relative-RMS convention that is standard in this literature (e.g. Li,
//! TCAD'10): per state, the RMS prediction residual on the testing set is
//! normalized by the RMS of the true values, and states are averaged.

/// Relative RMS error of predictions against truth: `‖ŷ − y‖₂ / ‖y‖₂`.
///
/// Returns `0.0` when both inputs are all-zero, and infinity when truth is
/// all-zero but predictions are not.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn relative_rms(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "relative_rms length mismatch");
    assert!(!pred.is_empty(), "relative_rms of empty data");
    let mut num = 0.0;
    let mut den = 0.0;
    for (p, t) in pred.iter().zip(truth) {
        num += (p - t) * (p - t);
        den += t * t;
    }
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// Root-mean-square error `sqrt(mean((ŷ − y)²))`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse length mismatch");
    assert!(!pred.is_empty(), "rmse of empty data");
    let s: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (s / pred.len() as f64).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae length mismatch");
    assert!(!pred.is_empty(), "mae of empty data");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// The paper's aggregate "modeling error" over K states: the mean of the
/// per-state [`relative_rms`] errors, as a fraction (multiply by 100 for %).
///
/// `per_state` holds `(predictions, truth)` pairs, one per state.
///
/// # Panics
///
/// Panics if `per_state` is empty or any pair has mismatched lengths.
pub fn mean_state_relative_rms(per_state: &[(Vec<f64>, Vec<f64>)]) -> f64 {
    assert!(!per_state.is_empty(), "no states provided");
    per_state
        .iter()
        .map(|(pred, truth)| relative_rms(pred, truth))
        .sum::<f64>()
        / per_state.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let y = [1.0, -2.0, 3.0];
        assert_eq!(relative_rms(&y, &y), 0.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn relative_rms_known_value() {
        // truth = [3, 4] (norm 5), pred = [3, 5]: residual norm 1 => 0.2.
        assert!((relative_rms(&[3.0, 5.0], &[3.0, 4.0]) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn rmse_and_mae_known_values() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [2.0, 2.0, 1.0];
        assert!((rmse(&pred, &truth) - (5.0f64 / 3.0).sqrt()).abs() < 1e-15);
        assert!((mae(&pred, &truth) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn zero_truth_edge_cases() {
        assert_eq!(relative_rms(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert!(relative_rms(&[1.0, 0.0], &[0.0, 0.0]).is_infinite());
    }

    #[test]
    fn state_average_is_mean_of_per_state_errors() {
        let s1 = (vec![3.0, 5.0], vec![3.0, 4.0]); // 0.2
        let s2 = (vec![3.0, 4.0], vec![3.0, 4.0]); // 0.0
        let e = mean_state_relative_rms(&[s1, s2]);
        assert!((e - 0.1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        relative_rms(&[1.0], &[1.0, 2.0]);
    }
}
