use cbmf_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::StatsError;

/// Lloyd's k-means clustering with k-means++-style seeding.
///
/// The paper's conclusion (§5) notes that when the states of a tunable
/// circuit are mutually different, "a clustering algorithm is needed to
/// group similar states into clusters before applying the proposed C-BMF
/// algorithm". This is that algorithm: states are embedded (e.g. by their
/// initial coefficient estimates) and clustered; C-BMF then runs per cluster.
///
/// # Examples
///
/// ```
/// use cbmf_linalg::Matrix;
/// use cbmf_stats::KMeans;
///
/// # fn main() -> Result<(), cbmf_stats::StatsError> {
/// let pts = Matrix::from_rows(&[
///     &[0.0, 0.0], &[0.1, -0.1], &[10.0, 10.0], &[10.1, 9.9],
/// ])?;
/// let mut rng = cbmf_stats::seeded_rng(3);
/// let fit = KMeans::new(2).fit(&pts, &mut rng)?;
/// assert_eq!(fit.labels()[0], fit.labels()[1]);
/// assert_ne!(fit.labels()[0], fit.labels()[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    restarts: usize,
}

impl KMeans {
    /// Creates a clusterer targeting `k` clusters with default iteration
    /// budget (100 iterations, 4 restarts).
    pub fn new(k: usize) -> Self {
        KMeans {
            k,
            max_iters: 100,
            restarts: 4,
        }
    }

    /// Sets the per-restart iteration budget.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the number of random restarts (best inertia wins).
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Clusters the rows of `points`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidInput`] if `k == 0` or there are fewer
    /// points than clusters.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        points: &Matrix,
        rng: &mut R,
    ) -> Result<KMeansFit, StatsError> {
        let n = points.rows();
        if self.k == 0 {
            return Err(StatsError::InvalidInput {
                what: "k must be at least 1".to_string(),
            });
        }
        if n < self.k {
            return Err(StatsError::InvalidInput {
                what: format!("cannot form {} clusters from {n} points", self.k),
            });
        }
        let mut best: Option<KMeansFit> = None;
        for _ in 0..self.restarts {
            let fit = self.fit_once(points, rng);
            let better = match &best {
                None => true,
                Some(b) => fit.inertia < b.inertia,
            };
            if better {
                best = Some(fit);
            }
        }
        Ok(best.expect("at least one restart runs"))
    }

    fn fit_once<R: Rng + ?Sized>(&self, points: &Matrix, rng: &mut R) -> KMeansFit {
        let (n, d) = points.shape();
        // Seed: distinct random points (simplified k-means++: random distinct
        // rows, adequate for the small K of the clustering extension).
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut centroids = Matrix::zeros(self.k, d);
        for (c, &i) in order.iter().take(self.k).enumerate() {
            centroids.row_mut(c).copy_from_slice(points.row(i));
        }
        let mut labels = vec![0usize; n];
        let mut inertia = f64::INFINITY;
        for _ in 0..self.max_iters {
            // Assignment step.
            let mut new_inertia = 0.0;
            for (i, label) in labels.iter_mut().enumerate() {
                let (lbl, dist) = nearest(points.row(i), &centroids);
                *label = lbl;
                new_inertia += dist;
            }
            // Update step.
            let mut sums = Matrix::zeros(self.k, d);
            let mut counts = vec![0usize; self.k];
            for i in 0..n {
                counts[labels[i]] += 1;
                let row = points.row(i);
                let dst = sums.row_mut(labels[i]);
                for (s, x) in dst.iter_mut().zip(row) {
                    *s += x;
                }
            }
            for (c, &count) in counts.iter().enumerate() {
                if count == 0 {
                    // Re-seed an empty cluster at the point farthest from its
                    // centroid to keep k clusters alive.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = sq_dist(points.row(a), centroids.row(labels[a]));
                            let db = sq_dist(points.row(b), centroids.row(labels[b]));
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .expect("n >= k >= 1");
                    centroids.row_mut(c).copy_from_slice(points.row(far));
                } else {
                    let inv = 1.0 / count as f64;
                    let src = sums.row(c).to_vec();
                    for (cd, s) in centroids.row_mut(c).iter_mut().zip(src) {
                        *cd = s * inv;
                    }
                }
            }
            if (inertia - new_inertia).abs() <= 1e-12 * inertia.max(1.0) {
                inertia = new_inertia;
                break;
            }
            inertia = new_inertia;
        }
        KMeansFit {
            labels,
            centroids,
            inertia,
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(point: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for c in 0..centroids.rows() {
        let d = sq_dist(point, centroids.row(c));
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// The result of a k-means fit.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    labels: Vec<usize>,
    centroids: Matrix,
    inertia: f64,
}

impl KMeansFit {
    /// Cluster label of each input row.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Cluster centroids, one per row.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Total within-cluster squared distance (lower is tighter).
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Groups row indices by cluster: `result[c]` lists the members of `c`.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let k = self.centroids.rows();
        let mut out = vec![Vec::new(); k];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l].push(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn two_blobs() -> Matrix {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.1 * i as f64, 0.05 * i as f64]);
        }
        for i in 0..10 {
            rows.push(vec![20.0 + 0.1 * i as f64, 20.0 - 0.05 * i as f64]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = two_blobs();
        let mut rng = seeded_rng(4);
        let fit = KMeans::new(2).fit(&pts, &mut rng).unwrap();
        let first = fit.labels()[0];
        for i in 0..10 {
            assert_eq!(fit.labels()[i], first);
        }
        for i in 10..20 {
            assert_ne!(fit.labels()[i], first);
        }
    }

    #[test]
    fn clusters_listing_matches_labels() {
        let pts = two_blobs();
        let mut rng = seeded_rng(4);
        let fit = KMeans::new(2).fit(&pts, &mut rng).unwrap();
        let clusters = fit.clusters();
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 20);
        for (c, members) in clusters.iter().enumerate() {
            for &i in members {
                assert_eq!(fit.labels()[i], c);
            }
        }
    }

    #[test]
    fn k_equals_one_gives_single_cluster() {
        let pts = two_blobs();
        let mut rng = seeded_rng(8);
        let fit = KMeans::new(1).fit(&pts, &mut rng).unwrap();
        assert!(fit.labels().iter().all(|&l| l == 0));
        // Centroid is the global mean.
        let mean_x: f64 = (0..20).map(|i| pts[(i, 0)]).sum::<f64>() / 20.0;
        assert!((fit.centroids()[(0, 0)] - mean_x).abs() < 1e-9);
    }

    #[test]
    fn k_equals_n_reaches_zero_inertia() {
        let pts = two_blobs();
        let mut rng = seeded_rng(5);
        let fit = KMeans::new(20).restarts(8).fit(&pts, &mut rng).unwrap();
        assert!(fit.inertia() < 1e-9, "inertia = {}", fit.inertia());
    }

    #[test]
    fn invalid_configurations_rejected() {
        let pts = two_blobs();
        let mut rng = seeded_rng(1);
        assert!(KMeans::new(0).fit(&pts, &mut rng).is_err());
        assert!(KMeans::new(21).fit(&pts, &mut rng).is_err());
    }

    #[test]
    fn inertia_never_increases_with_more_clusters() {
        let pts = two_blobs();
        let mut rng = seeded_rng(6);
        let i2 = KMeans::new(2)
            .restarts(6)
            .fit(&pts, &mut rng)
            .unwrap()
            .inertia();
        let i4 = KMeans::new(4)
            .restarts(6)
            .fit(&pts, &mut rng)
            .unwrap()
            .inertia();
        assert!(i4 <= i2 + 1e-9);
    }
}
