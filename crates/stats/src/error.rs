use std::fmt;

use cbmf_linalg::LinalgError;

/// Error type for the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// An input violated a precondition (empty data, bad probability, ...).
    InvalidInput {
        /// Human-readable description of the violated precondition.
        what: String,
    },
    /// A wrapped linear-algebra failure (e.g. a covariance that is not PD).
    Linalg(LinalgError),
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Which routine failed.
        op: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            StatsError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            StatsError::NoConvergence { op, iterations } => {
                write!(f, "{op} did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for StatsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatsError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for StatsError {
    fn from(e: LinalgError) -> Self {
        StatsError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StatsError::InvalidInput {
            what: "empty data".to_string(),
        };
        assert_eq!(e.to_string(), "invalid input: empty data");

        let inner = LinalgError::Singular { pivot: 0 };
        let wrapped = StatsError::from(inner.clone());
        assert!(wrapped.to_string().contains("singular"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<StatsError>();
    }
}
