//! Descriptive statistics: means, variances, quantiles, correlation.

/// Arithmetic mean. Returns `NaN` for empty input (matching `f64` semantics
/// of `0/0`), so callers that may pass empty slices should check first.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator `n − 1`).
///
/// Returns `0.0` for fewer than two observations.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Empirical quantile with linear interpolation between order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median (the 0.5 [`quantile`]).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `0.0` when either series is constant (zero variance).
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    assert!(xs.len() >= 2, "pearson requires at least two points");
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_of_short_series_is_zero() {
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 1.0 / 3.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty data")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn pearson_known_cases() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        let c = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &c), 0.0);
    }
}
