use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::StatsError;

/// K-fold cross-validation partitioner.
///
/// Algorithm 1 of the paper (step 1) partitions the sampling points into `C`
/// equal-size groups; each group serves once as the testing set while the
/// others train. Folds are assigned by shuffling indices so that any
/// systematic ordering in the sample stream cannot bias a fold.
///
/// # Examples
///
/// ```
/// use cbmf_stats::KFold;
///
/// # fn main() -> Result<(), cbmf_stats::StatsError> {
/// let mut rng = cbmf_stats::seeded_rng(1);
/// let kf = KFold::new(10, 5, &mut rng)?;
/// assert_eq!(kf.folds(), 5);
/// let (train, test) = kf.split(0);
/// assert_eq!(train.len() + test.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KFold {
    /// `assignment[i]` is the fold index of observation `i`.
    assignment: Vec<usize>,
    folds: usize,
}

impl KFold {
    /// Partitions `n` observations into `folds` shuffled groups.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidInput`] if `folds < 2` or `n < folds`.
    pub fn new<R: Rng + ?Sized>(n: usize, folds: usize, rng: &mut R) -> Result<Self, StatsError> {
        if folds < 2 {
            return Err(StatsError::InvalidInput {
                what: format!("cross-validation needs at least 2 folds, got {folds}"),
            });
        }
        if n < folds {
            return Err(StatsError::InvalidInput {
                what: format!("cannot split {n} observations into {folds} folds"),
            });
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut assignment = vec![0; n];
        for (pos, &idx) in order.iter().enumerate() {
            assignment[idx] = pos % folds;
        }
        Ok(KFold { assignment, folds })
    }

    /// Number of folds.
    pub fn folds(&self) -> usize {
        self.folds
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True if the partitioner covers zero observations (never constructed
    /// that way, but keeps the `len`/`is_empty` pair complete).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Returns `(train_indices, test_indices)` for fold `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.folds()`.
    pub fn split(&self, c: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(c < self.folds, "fold {c} out of range ({})", self.folds);
        let mut train = Vec::with_capacity(self.len());
        let mut test = Vec::with_capacity(self.len() / self.folds + 1);
        for (i, &f) in self.assignment.iter().enumerate() {
            if f == c {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn folds_partition_everything_exactly_once() {
        let mut rng = seeded_rng(9);
        let kf = KFold::new(23, 4, &mut rng).unwrap();
        let mut seen = [0usize; 23];
        for c in 0..4 {
            let (train, test) = kf.split(c);
            assert_eq!(train.len() + test.len(), 23);
            for &i in &test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            for &i in &test {
                assert!(!train.contains(&i));
            }
        }
        assert!(
            seen.iter().all(|&s| s == 1),
            "each index tests exactly once"
        );
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let mut rng = seeded_rng(1);
        let kf = KFold::new(20, 5, &mut rng).unwrap();
        for c in 0..5 {
            let (_, test) = kf.split(c);
            assert_eq!(test.len(), 4);
        }
    }

    #[test]
    fn invalid_configurations_rejected() {
        let mut rng = seeded_rng(1);
        assert!(KFold::new(10, 1, &mut rng).is_err());
        assert!(KFold::new(3, 4, &mut rng).is_err());
    }

    #[test]
    fn shuffling_depends_on_seed() {
        let mut r1 = seeded_rng(1);
        let mut r2 = seeded_rng(2);
        let k1 = KFold::new(50, 5, &mut r1).unwrap();
        let k2 = KFold::new(50, 5, &mut r2).unwrap();
        assert_ne!(k1.split(0).1, k2.split(0).1);
    }

    #[test]
    #[should_panic(expected = "fold 4 out of range")]
    fn out_of_range_fold_panics() {
        let mut rng = seeded_rng(1);
        let kf = KFold::new(8, 4, &mut rng).unwrap();
        kf.split(4);
    }
}
