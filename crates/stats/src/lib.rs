//! Statistics substrate for the C-BMF reproduction.
//!
//! Provides everything statistical that the paper's algorithm and its
//! evaluation need, on top of [`cbmf_linalg`]:
//!
//! * [`normal`] — standard-normal sampling (Box–Muller), pdf/cdf/quantile.
//! * [`Mvn`] — multivariate normal sampling via Cholesky.
//! * [`describe`] — descriptive statistics (mean, variance, quantiles,
//!   Pearson correlation).
//! * [`metrics`] — the modeling-error metrics reported in the paper's
//!   figures and tables.
//! * [`KFold`] — the cross-validation partitioner of Algorithm 1.
//! * [`KMeans`] — k-means clustering for the paper's §5 state-clustering
//!   extension.
//!
//! # Examples
//!
//! ```
//! use cbmf_stats::{normal, seeded_rng};
//!
//! let mut rng = seeded_rng(42);
//! let samples: Vec<f64> = (0..1000).map(|_| normal::sample(&mut rng)).collect();
//! let mean = cbmf_stats::describe::mean(&samples);
//! assert!(mean.abs() < 0.2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod describe;
mod error;
mod kfold;
mod kmeans;
pub mod metrics;
mod mvn;
pub mod normal;
mod rng;

pub use error::StatsError;
pub use kfold::KFold;
pub use kmeans::{KMeans, KMeansFit};
pub use mvn::Mvn;
pub use rng::{seeded_rng, SeededRng};
