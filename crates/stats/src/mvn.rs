use cbmf_linalg::{Cholesky, Matrix};
use rand::Rng;

use crate::error::StatsError;
use crate::normal;

/// A multivariate normal distribution `N(mean, cov)` with Cholesky-based
/// sampling.
///
/// Used to draw correlated inter-die process-variation components and to
/// sample from C-BMF posterior distributions in the examples.
///
/// # Examples
///
/// ```
/// use cbmf_linalg::Matrix;
/// use cbmf_stats::Mvn;
///
/// # fn main() -> Result<(), cbmf_stats::StatsError> {
/// let cov = Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]])?;
/// let mvn = Mvn::new(vec![0.0, 0.0], &cov)?;
/// let mut rng = cbmf_stats::seeded_rng(5);
/// let x = mvn.sample(&mut rng);
/// assert_eq!(x.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mvn {
    mean: Vec<f64>,
    chol: Cholesky,
}

impl Mvn {
    /// Creates the distribution from a mean vector and covariance matrix.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidInput`] if dimensions disagree.
    /// * [`StatsError::Linalg`] if `cov` is not positive definite.
    pub fn new(mean: Vec<f64>, cov: &Matrix) -> Result<Self, StatsError> {
        if cov.rows() != mean.len() {
            return Err(StatsError::InvalidInput {
                what: format!(
                    "mean length {} does not match covariance dimension {}",
                    mean.len(),
                    cov.rows()
                ),
            });
        }
        let chol = Cholesky::new_with_jitter(cov, 1e-12, 6)?;
        Ok(Mvn { mean, chol })
    }

    /// Creates a zero-mean distribution.
    ///
    /// # Errors
    ///
    /// Same as [`Mvn::new`].
    pub fn zero_mean(cov: &Matrix) -> Result<Self, StatsError> {
        Mvn::new(vec![0.0; cov.rows()], cov)
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Draws one sample: `mean + L z` with `z ~ N(0, I)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let z = normal::sample_vec(rng, self.dim());
        let mut x = self
            .chol
            .l_matvec(&z)
            .expect("dimension fixed at construction");
        for (xi, mi) in x.iter_mut().zip(&self.mean) {
            *xi += mi;
        }
        x
    }

    /// Draws `n` samples as rows of a matrix.
    pub fn sample_matrix<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Matrix {
        let d = self.dim();
        let mut out = Matrix::zeros(n, d);
        for i in 0..n {
            let x = self.sample(rng);
            out.row_mut(i).copy_from_slice(&x);
        }
        out
    }

    /// Log-density of the distribution at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidInput`] if `x.len() != self.dim()`.
    pub fn log_pdf(&self, x: &[f64]) -> Result<f64, StatsError> {
        if x.len() != self.dim() {
            return Err(StatsError::InvalidInput {
                what: format!("point has dimension {}, expected {}", x.len(), self.dim()),
            });
        }
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, b)| a - b).collect();
        // Whitened residual: ‖L⁻¹ (x − μ)‖².
        let w = self
            .chol
            .forward_solve(&centered)
            .expect("dimension checked above");
        let quad: f64 = w.iter().map(|v| v * v).sum();
        let d = self.dim() as f64;
        Ok(-0.5 * (quad + self.chol.logdet() + d * (std::f64::consts::TAU).ln()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;
    use crate::seeded_rng;

    #[test]
    fn sample_covariance_matches_target() {
        let cov = Matrix::from_rows(&[&[2.0, 1.2], &[1.2, 1.0]]).unwrap();
        let mvn = Mvn::zero_mean(&cov).unwrap();
        let mut rng = seeded_rng(11);
        let n = 40_000;
        let xs = mvn.sample_matrix(&mut rng, n);
        let c00 = describe::variance(&xs.col(0));
        let c11 = describe::variance(&xs.col(1));
        let r = describe::pearson(&xs.col(0), &xs.col(1));
        assert!((c00 - 2.0).abs() < 0.08, "c00 = {c00}");
        assert!((c11 - 1.0).abs() < 0.04, "c11 = {c11}");
        let target_r = 1.2 / (2.0f64 * 1.0).sqrt();
        assert!((r - target_r).abs() < 0.02, "r = {r}");
    }

    #[test]
    fn mean_shift_applies() {
        let cov = Matrix::identity(3);
        let mvn = Mvn::new(vec![10.0, -5.0, 0.0], &cov).unwrap();
        let mut rng = seeded_rng(2);
        let xs = mvn.sample_matrix(&mut rng, 20_000);
        assert!((describe::mean(&xs.col(0)) - 10.0).abs() < 0.05);
        assert!((describe::mean(&xs.col(1)) + 5.0).abs() < 0.05);
        assert!(describe::mean(&xs.col(2)).abs() < 0.05);
    }

    #[test]
    fn log_pdf_matches_univariate_formula() {
        let cov = Matrix::from_diag(&[4.0]);
        let mvn = Mvn::zero_mean(&cov).unwrap();
        // N(0, 4) at x = 2: log pdf = -0.5*(1 + ln 4 + ln 2π)
        let expected = -0.5 * (1.0 + 4.0f64.ln() + std::f64::consts::TAU.ln());
        assert!((mvn.log_pdf(&[2.0]).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn log_pdf_peaks_at_mean() {
        let cov = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 2.0]]).unwrap();
        let mvn = Mvn::new(vec![1.0, -1.0], &cov).unwrap();
        let at_mean = mvn.log_pdf(&[1.0, -1.0]).unwrap();
        let off = mvn.log_pdf(&[2.0, 0.0]).unwrap();
        assert!(at_mean > off);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let cov = Matrix::identity(2);
        assert!(Mvn::new(vec![0.0; 3], &cov).is_err());
        let mvn = Mvn::zero_mean(&cov).unwrap();
        assert!(mvn.log_pdf(&[0.0]).is_err());
    }

    #[test]
    fn non_pd_covariance_rejected() {
        let cov = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(Mvn::zero_mean(&cov), Err(StatsError::Linalg(_))));
    }
}
