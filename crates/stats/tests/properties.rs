//! Property-based tests on the statistics substrate.

use cbmf_linalg::Matrix;
use cbmf_stats::{describe, metrics, normal, seeded_rng, KFold, Mvn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mean and variance are translation-covariant / invariant.
    #[test]
    fn mean_variance_translation(
        xs in proptest::collection::vec(-10.0f64..10.0, 2..50),
        shift in -5.0f64..5.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((describe::mean(&shifted) - describe::mean(&xs) - shift).abs() < 1e-9);
        prop_assert!((describe::variance(&shifted) - describe::variance(&xs)).abs() < 1e-9);
    }

    /// Quantile is monotone in p and bounded by the extremes.
    #[test]
    fn quantile_monotone_and_bounded(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..40),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let qlo = describe::quantile(&xs, lo);
        let qhi = describe::quantile(&xs, hi);
        prop_assert!(qlo <= qhi + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(qlo >= min - 1e-12 && qhi <= max + 1e-12);
    }

    /// Pearson correlation is bounded in [-1, 1] and invariant to positive
    /// affine maps.
    #[test]
    fn pearson_bounds_and_affine_invariance(
        xs in proptest::collection::vec(-5.0f64..5.0, 3..30),
        a in 0.1f64..4.0,
        b in -3.0f64..3.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * x - x).collect();
        let r = describe::pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
        let xs2: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let r2 = describe::pearson(&xs2, &ys);
        prop_assert!((r - r2).abs() < 1e-9);
    }

    /// relative_rms is scale-invariant: scaling both prediction and truth
    /// by c leaves it unchanged.
    #[test]
    fn relative_rms_scale_invariant(
        pairs in proptest::collection::vec((-5.0f64..5.0, 0.5f64..5.0), 1..20),
        c in 0.1f64..10.0,
    ) {
        let pred: Vec<f64> = pairs.iter().map(|(p, _)| *p).collect();
        let truth: Vec<f64> = pairs.iter().map(|(_, t)| *t).collect();
        let e1 = metrics::relative_rms(&pred, &truth);
        let pred_c: Vec<f64> = pred.iter().map(|p| p * c).collect();
        let truth_c: Vec<f64> = truth.iter().map(|t| t * c).collect();
        let e2 = metrics::relative_rms(&pred_c, &truth_c);
        prop_assert!((e1 - e2).abs() < 1e-9 * (1.0 + e1));
    }

    /// K-fold splits partition the index set for any valid (n, folds).
    #[test]
    fn kfold_partitions(n in 4usize..60, folds in 2usize..5, seed in 0u64..100) {
        prop_assume!(n >= folds);
        let mut rng = seeded_rng(seed);
        let kf = KFold::new(n, folds, &mut rng).expect("valid");
        let mut seen = vec![false; n];
        for c in 0..folds {
            let (train, test) = kf.split(c);
            prop_assert_eq!(train.len() + test.len(), n);
            for &i in &test {
                prop_assert!(!seen[i], "index {i} tested twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// MVN samples transform correctly: a diagonal covariance produces
    /// approximately independent coordinates with the right scales.
    #[test]
    fn mvn_diagonal_scales(v0 in 0.5f64..4.0, v1 in 0.5f64..4.0, seed in 0u64..50) {
        let cov = Matrix::from_diag(&[v0, v1]);
        let mvn = Mvn::zero_mean(&cov).expect("pd");
        let mut rng = seeded_rng(seed);
        let xs = mvn.sample_matrix(&mut rng, 4000);
        let s0 = describe::variance(&xs.col(0));
        let s1 = describe::variance(&xs.col(1));
        prop_assert!((s0 - v0).abs() < 0.25 * v0, "{s0} vs {v0}");
        prop_assert!((s1 - v1).abs() < 0.25 * v1, "{s1} vs {v1}");
    }

    /// The normal cdf/quantile pair are inverse on a grid.
    #[test]
    fn normal_quantile_cdf_roundtrip(p in 0.001f64..0.999) {
        let x = normal::quantile(p);
        prop_assert!((normal::cdf(x) - p).abs() < 1e-6);
    }
}
