//! Posterior-predictive uncertainty — what the Bayesian formulation buys
//! beyond the paper's point estimates: every prediction carries a variance,
//! so downstream yield/corner decisions can be made risk-aware.
//!
//! Run with: `cargo run --release -p cbmf --example uncertainty`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, PosteriorPredictive, TunableProblem};
use cbmf_circuits::{Lna, MonteCarlo, Testbench, TunableDataset};
use cbmf_stats::seeded_rng;

fn problem(ds: &TunableDataset, metric: usize) -> TunableProblem {
    let xs: Vec<_> = ds.states.iter().map(|s| s.x.clone()).collect();
    let ys: Vec<_> = ds.states.iter().map(|s| s.metric(metric)).collect();
    TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear).expect("valid dataset")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lna = Lna::new();
    let mut rng = seeded_rng(45);
    let train = MonteCarlo::new(15).collect(&lna, &mut rng)?;
    let p = problem(&train, 0); // noise figure

    // Fit, then build the exact predictive distribution under the refined
    // hyper-parameters.
    let fit = CbmfFit::new(CbmfConfig::default()).fit(&p, &mut rng)?;
    let em = fit.em().expect("full pipeline");
    let predictive = PosteriorPredictive::new(&p, &em.prior)?;

    // Check the error bars against fresh simulations.
    println!("state,corner,simulated_nf_db,predicted_nf_db,sigma,within_2sigma");
    let mut hits = 0;
    let mut total = 0;
    for state in [0usize, 15, 31] {
        for trial in 0..5 {
            let x = lna.variation_model().sample(&mut rng);
            let simulated = lna.simulate(state, &x)?[0];
            let (mean, var) = predictive.predict(state, &x)?;
            let sigma = var.sqrt();
            let within = (simulated - mean).abs() <= 2.0 * sigma;
            hits += usize::from(within);
            total += 1;
            println!("{state},{trial},{simulated:.4},{mean:.4},{sigma:.4},{within}");
        }
    }
    println!("2-sigma empirical coverage: {hits}/{total}");
    println!("-> intervals are usable for risk-aware corner sign-off.");
    Ok(())
}
