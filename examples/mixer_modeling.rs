//! The paper's §4.2 flow: performance modeling of a tunable 2.4 GHz
//! down-conversion mixer (32 states, 1303 variables) — S-OMP vs C-BMF.
//!
//! Run with: `cargo run --release -p cbmf --example mixer_modeling`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, Somp, SompConfig, TunableProblem};
use cbmf_circuits::{Mixer, MonteCarlo, Testbench, TunableDataset};
use cbmf_stats::seeded_rng;

fn problem(ds: &TunableDataset, metric: usize) -> TunableProblem {
    let xs: Vec<_> = ds.states.iter().map(|s| s.x.clone()).collect();
    let ys: Vec<_> = ds.states.iter().map(|s| s.metric(metric)).collect();
    TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear).expect("valid dataset")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mixer = Mixer::new();
    let mut rng = seeded_rng(42);
    println!(
        "Mixer: {} states (two tunable load resistors), {} variables",
        mixer.num_states(),
        mixer.num_variables()
    );
    let (r1, r2) = mixer.state_loads(0);
    let (r1h, r2h) = mixer.state_loads(31);
    println!("load sweep: ({r1:.0} Ω, {r2:.0} Ω) .. ({r1h:.0} Ω, {r2h:.0} Ω)");

    let test = MonteCarlo::new(50).collect(&mixer, &mut rng)?;
    let train_somp = MonteCarlo::new(35).collect(&mixer, &mut rng)?;
    let train_cbmf = MonteCarlo::new(15).collect(&mixer, &mut rng)?;

    for (m, name) in mixer.metric_names().iter().enumerate() {
        let test_p = problem(&test, m);
        let somp = Somp::new(SompConfig::default()).fit(&problem(&train_somp, m), &mut rng)?;
        let cbmf = CbmfFit::new(CbmfConfig::default()).fit(&problem(&train_cbmf, m), &mut rng)?;
        println!(
            "{name:12}  S-OMP@1120: {:5.3}%   C-BMF@480: {:5.3}%",
            100.0 * somp.modeling_error(&test_p)?,
            100.0 * cbmf.model().modeling_error(&test_p)?
        );
    }
    println!(
        "simulation cost: S-OMP {:.2} h, C-BMF {:.2} h  ({:.1}x reduction)",
        train_somp.cost.hours(),
        train_cbmf.cost.hours(),
        train_somp.cost.hours() / train_cbmf.cost.hours()
    );
    Ok(())
}
