//! Quickstart: fit C-BMF on a small synthetic tunable-circuit problem and
//! compare it against S-OMP.
//!
//! Run with: `cargo run --release -p cbmf --example quickstart`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, Somp, SompConfig, TunableProblem};
use cbmf_linalg::Matrix;
use cbmf_stats::{normal, seeded_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy tunable circuit: K = 6 knob states, d = 30 "process variables",
    // a shared sparse template {1, 4, 9} whose coefficient magnitudes drift
    // smoothly with the knob — exactly the structure C-BMF exploits.
    let (k, d, n_train) = (6, 30, 10);
    let mut rng = seeded_rng(7);
    let make = |n: usize, noise: f64, rng: &mut cbmf_stats::SeededRng| {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for state in 0..k {
            let x = Matrix::from_fn(n, d, |_, _| normal::sample(rng));
            let w = 1.0 + 0.06 * state as f64;
            let y: Vec<f64> = (0..n)
                .map(|i| {
                    3.0 + w * (2.0 * x[(i, 1)] - 1.2 * x[(i, 4)] + 0.7 * x[(i, 9)])
                        + noise * normal::sample(rng)
                })
                .collect();
            xs.push(x);
            ys.push(y);
        }
        TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear)
    };
    let train = make(n_train, 0.15, &mut rng)?;
    let test = make(200, 0.0, &mut rng)?;

    // Fit both methods on the same scarce training data.
    let somp = Somp::new(SompConfig {
        theta_candidates: vec![2, 3, 6],
        cv_folds: 3,
    })
    .fit(&train, &mut rng)?;
    let cbmf = CbmfFit::new(CbmfConfig::small_problem()).fit(&train, &mut rng)?;

    println!("training samples per state : {n_train}");
    println!(
        "S-OMP : error {:6.3}%  support {:?}",
        100.0 * somp.modeling_error(&test)?,
        somp.support()
    );
    println!(
        "C-BMF : error {:6.3}%  support {:?}  (r0 = {:.2}, {} EM iters)",
        100.0 * cbmf.model().modeling_error(&test)?,
        cbmf.model().support(),
        cbmf.init().expect("full pipeline").r0,
        cbmf.em().expect("full pipeline").iterations
    );

    // Predict state 3 at a specific process corner.
    let mut corner = vec![0.0; d];
    corner[1] = 2.0; // +2σ on the dominant variable
    println!(
        "state 3 prediction at +2σ corner: {:.3}",
        cbmf.model().predict(3, &corner)?
    );
    Ok(())
}
