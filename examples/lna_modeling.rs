//! The paper's §4.1 flow: performance modeling of a tunable 2.4 GHz LNA
//! (32 knob states, 1264 process-variation variables) — S-OMP vs C-BMF on
//! all three metrics, with the virtual simulation-cost accounting that
//! produces Table 1's cost rows.
//!
//! Run with: `cargo run --release -p cbmf --example lna_modeling`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, Somp, SompConfig, TunableProblem};
use cbmf_circuits::{Lna, MonteCarlo, Testbench, TunableDataset};
use cbmf_stats::seeded_rng;

fn problem(ds: &TunableDataset, metric: usize) -> TunableProblem {
    let xs: Vec<_> = ds.states.iter().map(|s| s.x.clone()).collect();
    let ys: Vec<_> = ds.states.iter().map(|s| s.metric(metric)).collect();
    TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear).expect("valid dataset")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lna = Lna::new();
    let mut rng = seeded_rng(41);
    println!(
        "LNA: {} states, {} variation variables, metrics {:?}",
        lna.num_states(),
        lna.num_variables(),
        lna.metric_names()
    );

    // The paper's operating points: S-OMP needs 35 samples/state (1120
    // total) for the accuracy C-BMF reaches with 15/state (480 total).
    let test = MonteCarlo::new(50).collect(&lna, &mut rng)?;
    let train_somp = MonteCarlo::new(35).collect(&lna, &mut rng)?;
    let train_cbmf = MonteCarlo::new(15).collect(&lna, &mut rng)?;

    for (m, name) in lna.metric_names().iter().enumerate() {
        let test_p = problem(&test, m);
        let somp = Somp::new(SompConfig::default()).fit(&problem(&train_somp, m), &mut rng)?;
        let cbmf = CbmfFit::new(CbmfConfig::default()).fit(&problem(&train_cbmf, m), &mut rng)?;
        println!(
            "{name:10}  S-OMP@1120: {:5.3}%   C-BMF@480: {:5.3}%",
            100.0 * somp.modeling_error(&test_p)?,
            100.0 * cbmf.model().modeling_error(&test_p)?
        );
    }
    println!(
        "simulation cost: S-OMP {:.2} h, C-BMF {:.2} h  ({:.1}x reduction)",
        train_somp.cost.hours(),
        train_cbmf.cost.hours(),
        train_somp.cost.hours() / train_cbmf.cost.hours()
    );
    Ok(())
}
