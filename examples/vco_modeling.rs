//! Beyond the paper's two circuits: modeling a tunable LC-VCO's phase
//! noise, frequency and amplitude with the same pipeline — nothing in
//! C-BMF is specific to the LNA/mixer.
//!
//! Run with: `cargo run --release -p cbmf --example vco_modeling`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, Somp, SompConfig, TunableProblem};
use cbmf_circuits::{MonteCarlo, Testbench, TunableDataset, Vco};
use cbmf_stats::seeded_rng;

fn problem(ds: &TunableDataset, metric: usize) -> TunableProblem {
    let xs: Vec<_> = ds.states.iter().map(|s| s.x.clone()).collect();
    let ys: Vec<_> = ds.states.iter().map(|s| s.metric(metric)).collect();
    TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear).expect("valid dataset")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vco = Vco::new();
    let mut rng = seeded_rng(46);
    println!(
        "VCO: {} states (capacitor bank), {} variables, metrics {:?}",
        vco.num_states(),
        vco.num_variables(),
        vco.metric_names()
    );
    let x0 = vec![0.0; vco.num_variables()];
    println!(
        "tuning range: {:.3} GHz (state 0) .. {:.3} GHz (state 31)",
        vco.simulate(0, &x0)?[0],
        vco.simulate(31, &x0)?[0]
    );

    let test = MonteCarlo::new(40).collect(&vco, &mut rng)?;
    let train = MonteCarlo::new(12).collect(&vco, &mut rng)?;
    for (m, name) in vco.metric_names().iter().enumerate() {
        let test_p = problem(&test, m);
        let train_p = problem(&train, m);
        let somp = Somp::new(SompConfig::default()).fit(&train_p, &mut rng)?;
        let cbmf = CbmfFit::new(CbmfConfig::default()).fit(&train_p, &mut rng)?;
        println!(
            "{name:9}  S-OMP: {:6.3}%   C-BMF: {:6.3}%   ({} bases)",
            100.0 * somp.modeling_error(&test_p)?,
            100.0 * cbmf.model().modeling_error(&test_p)?,
            cbmf.model().support().len()
        );
    }
    println!(
        "virtual simulation cost at 12 samples/state: {:.2} h",
        train.cost.hours()
    );
    Ok(())
}
