//! Parametric-yield estimation — the application the paper's introduction
//! motivates: "the performance model, once built, can be applied to ...
//! yield estimation".
//!
//! A tunable circuit's whole point is that each die can pick its best knob
//! state after manufacturing. With the fitted per-state models, yield over
//! the process distribution is a cheap model-space Monte Carlo instead of
//! thousands of circuit simulations:
//!
//! * fixed-state yield — fraction of dies meeting spec at one fixed knob;
//! * adaptive yield    — fraction of dies for which *some* knob meets spec.
//!
//! Run with: `cargo run --release -p cbmf --example yield_estimation`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, PerStateModel, TunableProblem};
use cbmf_circuits::{Lna, MonteCarlo, Testbench, TunableDataset};
use cbmf_stats::seeded_rng;

fn problem(ds: &TunableDataset, metric: usize) -> TunableProblem {
    let xs: Vec<_> = ds.states.iter().map(|s| s.x.clone()).collect();
    let ys: Vec<_> = ds.states.iter().map(|s| s.metric(metric)).collect();
    TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear).expect("valid dataset")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lna = Lna::new();
    let mut rng = seeded_rng(43);

    // Build the three metric models from 15 samples/state (the C-BMF
    // operating point of Table 1).
    let train = MonteCarlo::new(15).collect(&lna, &mut rng)?;
    let mut models: Vec<PerStateModel> = Vec::new();
    for m in 0..lna.metric_names().len() {
        let fit = CbmfFit::new(CbmfConfig::default()).fit(&problem(&train, m), &mut rng)?;
        models.push(fit.into_model());
    }

    // Specs: NF ≤ 1.9 dB, VG ≥ 25 dB, IIP3 ≥ -6 dBm.
    let meets_spec = |nf: f64, vg: f64, iip3: f64| nf <= 1.9 && vg >= 25.0 && iip3 >= -6.0;

    // Model-space Monte Carlo over the process distribution.
    let dies = 2_000;
    let k = lna.num_states();
    let mut pass_fixed = vec![0usize; k];
    let mut pass_adaptive = 0usize;
    for _ in 0..dies {
        let x = lna.variation_model().sample(&mut rng);
        let mut any = false;
        for (state, hits) in pass_fixed.iter_mut().enumerate() {
            let nf = models[0].predict(state, &x)?;
            let vg = models[1].predict(state, &x)?;
            let iip3 = models[2].predict(state, &x)?;
            if meets_spec(nf, vg, iip3) {
                *hits += 1;
                any = true;
            }
        }
        if any {
            pass_adaptive += 1;
        }
    }

    let best_state = (0..k).max_by_key(|&s| pass_fixed[s]).expect("k > 0");
    println!("spec: NF <= 1.9 dB, VG >= 25 dB, IIP3 >= -6 dBm  ({dies} dies)");
    println!(
        "best fixed knob state  : {}  yield {:.1}%",
        best_state,
        100.0 * pass_fixed[best_state] as f64 / dies as f64
    );
    println!(
        "worst fixed knob state : {}  yield {:.1}%",
        (0..k).min_by_key(|&s| pass_fixed[s]).expect("k > 0"),
        100.0 * pass_fixed.iter().copied().min().unwrap_or(0) as f64 / dies as f64
    );
    println!(
        "adaptive (post-silicon tuning) yield: {:.1}%",
        100.0 * pass_adaptive as f64 / dies as f64
    );
    println!("-> tuning converts process spread into yield, which is why");
    println!("   per-state performance models are worth building cheaply.");
    Ok(())
}
