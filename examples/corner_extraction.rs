//! Design-specific worst-case corner extraction — another application from
//! the paper's introduction (ref. [14]): given a fitted linear performance
//! model, the worst-case process corner at a k·σ ball is analytic
//! (`x* = ±k·α/‖α‖`), per knob state, and can be verified with a single
//! circuit simulation each.
//!
//! Run with: `cargo run --release -p cbmf --example corner_extraction`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, TunableProblem};
use cbmf_circuits::{Lna, MonteCarlo, Testbench, TunableDataset};
use cbmf_stats::seeded_rng;

fn problem(ds: &TunableDataset, metric: usize) -> TunableProblem {
    let xs: Vec<_> = ds.states.iter().map(|s| s.x.clone()).collect();
    let ys: Vec<_> = ds.states.iter().map(|s| s.metric(metric)).collect();
    TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear).expect("valid dataset")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lna = Lna::new();
    let mut rng = seeded_rng(44);
    let train = MonteCarlo::new(15).collect(&lna, &mut rng)?;

    // Model the noise figure (worst case = maximum NF).
    let fit = CbmfFit::new(CbmfConfig::default()).fit(&problem(&train, 0), &mut rng)?;
    let model = fit.model();
    let d = lna.num_variables();
    let sigma = 3.0;

    println!("3-sigma worst-case NF corners (model-predicted vs simulated):");
    println!("state,nominal_nf_db,predicted_worst_db,simulated_worst_db");
    for state in [0usize, 15, 31] {
        // Dense coefficient direction for this state.
        let mut alpha = vec![0.0; d];
        for (c, &m) in model.coefficients().row(state).iter().zip(model.support()) {
            alpha[m] = *c;
        }
        let norm = alpha.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-300);
        // Worst case for a maximization-adverse metric: move along +α.
        let corner: Vec<f64> = alpha.iter().map(|a| sigma * a / norm).collect();
        let nominal = lna.simulate(state, &vec![0.0; d])?[0];
        let predicted = model.predict(state, &corner)?;
        let simulated = lna.simulate(state, &corner)?[0];
        println!("{state},{nominal:.4},{predicted:.4},{simulated:.4}");
    }
    println!("-> one simulation per state verifies the extracted corner,");
    println!("   instead of a blind Monte Carlo search for the tail.");
    Ok(())
}
