//! The deployment loop the paper's use cases assume: fit once, save the
//! model as a versioned artifact, then reload it in a "serving" process and
//! evaluate thousands of variation samples in blocked batches — with
//! predictive uncertainty, and bitwise identical to the in-process fit.
//!
//! Run with: `cargo run --release -p cbmf-serve --example save_and_serve`

use cbmf::{BasisSpec, CbmfConfig, CbmfFit, PosteriorPredictive, TunableProblem};
use cbmf_circuits::{Lna, MonteCarlo};
use cbmf_linalg::Matrix;
use cbmf_serve::{BatchPredictor, ModelArtifact};
use cbmf_stats::{normal, seeded_rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fit side: a reduced LNA voltage-gain model (CI-speed). ---------
    let lna = Lna::new();
    let mut rng = seeded_rng(4210);
    let ds = MonteCarlo::new(8).collect(&lna, &mut rng)?;
    let keep_states = 6;
    let keep_vars = 40;
    let xs: Vec<_> = ds
        .states
        .iter()
        .take(keep_states)
        .map(|s| s.x.block(0, s.x.rows(), 0, keep_vars))
        .collect();
    let ys: Vec<_> = ds
        .states
        .iter()
        .take(keep_states)
        .map(|s| s.metric(1))
        .collect();
    let problem = TunableProblem::from_samples(&xs, &ys, BasisSpec::Linear)?;

    let mut cfg = CbmfConfig::small_problem();
    cfg.grid.theta = vec![4, 8];
    cfg.em.max_iters = 5;
    let outcome = CbmfFit::new(cfg).fit(&problem, &mut rng)?;
    println!(
        "fitted: {} states, support {}, strategy {:?}",
        outcome.model().num_states(),
        outcome.model().support().len(),
        outcome.strategy()
    );

    // --- Save: model + hyper-parameters + posterior factors. ------------
    let prior = outcome.prior().expect("full fit keeps its prior");
    let predictive = PosteriorPredictive::new(&problem, prior)?;
    let artifact = ModelArtifact::from_fit(&outcome).with_predictive(&predictive);
    std::fs::create_dir_all("results")?;
    let path = "results/lna_gain.cbmf.json";
    artifact.save(path)?;
    println!(
        "saved {path} ({} bytes)",
        artifact.to_canonical_string().len()
    );

    // --- Serve side: reload and batch-predict. ---------------------------
    let reloaded = ModelArtifact::load(path)?;
    let predictor = BatchPredictor::from_artifact(&reloaded)?;
    let batch = Matrix::from_fn(4096, keep_vars, |_, _| normal::sample(&mut rng));
    let means = predictor.predict_batch(&batch)?;
    println!(
        "served {} predictions; state-0 mean gain {:.3} dB",
        means.rows() * means.cols(),
        means.col(0).iter().sum::<f64>() / means.rows() as f64
    );

    // The round trip is exact: re-predicting through the loaded artifact
    // reproduces the in-process predictive distribution bit for bit.
    let (mean_u, var_u) =
        predictor.predict_batch_with_uncertainty(&batch.block(0, 16, 0, keep_vars))?;
    let (m0, v0) = predictive.predict(0, batch.row(0))?;
    assert_eq!(mean_u[(0, 0)].to_bits(), m0.to_bits());
    assert_eq!(var_u[(0, 0)].to_bits(), v0.to_bits());
    println!(
        "round-trip check: mean {m0:.4} ± {:.4} (bitwise equal before/after save)",
        v0.sqrt()
    );
    Ok(())
}
